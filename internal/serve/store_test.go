package serve_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathprof/internal/faultinject"
	"pathprof/internal/serve"
	"pathprof/internal/snapshot"
)

func TestValidTenant(t *testing.T) {
	for _, name := range []string{"app", "mcf", "a-b_c.d", "A1", "x"} {
		if !serve.ValidTenant(name) {
			t.Errorf("ValidTenant(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", ".hidden", "-x", "a/b", "a b", "bad..name", "..",
		"averyveryveryveryveryveryveryveryveryveryveryverylongtenantname-over64chars"} {
		if serve.ValidTenant(name) {
			t.Errorf("ValidTenant(%q) = true, want false", name)
		}
	}
}

func TestMemStoreRoundTripAndIsolation(t *testing.T) {
	ms := serve.NewMemStore()
	if _, err := ms.Load("app"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing tenant: %v, want ErrNotExist", err)
	}
	data := encodeSnap(0, 0)
	if err := ms.Save("app", data); err != nil {
		t.Fatal(err)
	}
	got, err := ms.Load("app")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
	// Mutating the returned slice must not touch the stored copy.
	got[0] ^= 0xff
	again, _ := ms.Load("app")
	if !bytes.Equal(again, data) {
		t.Error("Load aliases internal buffer")
	}
	names, err := ms.Tenants()
	if err != nil || len(names) != 1 || names[0] != "app" {
		t.Errorf("Tenants = %v, %v", names, err)
	}
}

func TestFileStoreFallsBackPastCorruptPrimary(t *testing.T) {
	dir := t.TempDir()
	fs, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := encodeSnap(0, 0), encodeSnap(0, 1)
	if err := fs.Save("app", v1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("app", v2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary in place; Load must fall back to .prev (v1).
	primary := filepath.Join(dir, "app.ppsnap")
	if err := os.WriteFile(primary, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load("app")
	if err != nil {
		t.Fatalf("load with corrupt primary: %v", err)
	}
	if !bytes.Equal(got, v1) {
		t.Error("fallback did not return the previous good aggregate")
	}
}

func TestOpenFileStoreRecoversTornState(t *testing.T) {
	dir := t.TempDir()
	fs, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := encodeSnap(1, 0), encodeSnap(1, 1)
	if err := fs.Save("app", v1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("app", v2); err != nil {
		t.Fatal(err)
	}
	// Crash mid-rotation: primary moved to .prev, torn bytes in .tmp.
	primary := filepath.Join(dir, "app.ppsnap")
	if err := os.Rename(primary, primary+".prev"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(primary+".tmp", v2[:len(v2)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery rolls back to the last acknowledged aggregate.
	fs2, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Load("app")
	if err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
	if !bytes.Equal(got, v2) {
		t.Error("recovery lost the last acknowledged aggregate")
	}
	if _, err := os.Stat(primary + ".tmp"); !os.IsNotExist(err) {
		t.Error("stale .tmp survived reopen")
	}
	if _, err := snapshot.Decode(got); err != nil {
		t.Errorf("recovered bytes corrupt: %v", err)
	}
}

func TestFileStoreRejectsHostileTenants(t *testing.T) {
	fs, err := serve.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../escape", "a/b", "..", ""} {
		if err := fs.Save(name, encodeSnap(0, 0)); err == nil {
			t.Errorf("Save(%q) accepted a hostile tenant name", name)
		}
		if _, err := fs.Load(name); err == nil {
			t.Errorf("Load(%q) accepted a hostile tenant name", name)
		}
	}
}

func TestFaultStoreDeterministicPattern(t *testing.T) {
	inj, err := faultinject.Parse("seed=5,kind=storefail+partialwrite,rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	data := encodeSnap(0, 0)
	pattern := func() []bool {
		fs := serve.NewFaultStore(serve.NewMemStore(), inj)
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, fs.Save("app", data) != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverged at save %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("degenerate fault pattern: %d/%d saves failed", faults, len(a))
	}
	// Injected failures are distinguishable from real ones.
	fs := serve.NewFaultStore(serve.NewMemStore(), inj)
	for i := 0; i < 32; i++ {
		if err := fs.Save("app", data); err != nil {
			if !errors.Is(err, serve.ErrInjectedSave) {
				t.Fatalf("injected fault not marked: %v", err)
			}
			return
		}
	}
}

func TestFaultStorePartialWriteLeavesTornTmp(t *testing.T) {
	dir := t.TempDir()
	inner, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// rate=1: every save tears (partialwrite dominates once storefail
	// is absent from the spec).
	inj, err := faultinject.Parse("seed=1,kind=partialwrite,rate=1")
	if err != nil {
		t.Fatal(err)
	}
	fs := serve.NewFaultStore(inner, inj)
	data := encodeSnap(2, 2)
	if err := fs.Save("app", data); !errors.Is(err, serve.ErrInjectedSave) {
		t.Fatalf("partial write not injected: %v", err)
	}
	torn, err := os.ReadFile(filepath.Join(dir, "app.ppsnap.tmp"))
	if err != nil {
		t.Fatalf("no torn .tmp left behind: %v", err)
	}
	if len(torn) == 0 || len(torn) >= len(data) {
		t.Errorf("torn bytes len %d, want a strict prefix of %d", len(torn), len(data))
	}
	// Reopen recovers past the torn write; the tenant has no durable
	// state (nothing was ever acknowledged).
	fs2, err := serve.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Load("app"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("load after torn-only history: %v, want ErrNotExist", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "app.ppsnap.tmp")); !os.IsNotExist(err) {
		t.Error("torn .tmp survived recovery")
	}
}
