package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Graceful runs an HTTP handler with clean draining shutdown: when
// the context ends (typically via SignalContext), in-flight requests
// get a drain window to finish, OnDrain hooks run (the profile
// server's queue drain), and only then does Wait return. Shared by
// pppd, pppbench -serve, and pppc -serve so every long-running
// surface in the repo stops the same way.
type Graceful struct {
	// Handler is the surface to serve. Required.
	Handler http.Handler
	// Drain bounds how long shutdown waits for in-flight requests and
	// OnDrain hooks. Default 5s.
	Drain time.Duration
	// OnDrain hooks run after the listener closes and in-flight
	// requests finish — e.g. Server.Shutdown to commit the queue.
	OnDrain []func(ctx context.Context) error
	// Log receives progress lines; io.Discard when nil.
	Log io.Writer

	srv *http.Server
}

func (g *Graceful) log() io.Writer {
	if g.Log != nil {
		return g.Log
	}
	return io.Discard
}

func (g *Graceful) drain() time.Duration {
	if g.Drain > 0 {
		return g.Drain
	}
	return 5 * time.Second
}

// Start begins serving on ln in a background goroutine and returns
// immediately. Serve errors surface from Wait.
func (g *Graceful) Start(ln net.Listener) <-chan error {
	g.srv = &http.Server{Handler: g.Handler}
	errc := make(chan error, 1)
	go func() {
		if err := g.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	return errc
}

// Wait blocks until ctx ends, then shuts down within the drain
// window: stop accepting, finish in-flight requests, run OnDrain
// hooks. Returns the first error from the serve loop, the HTTP
// shutdown, or a hook; nil on a clean drain.
func (g *Graceful) Wait(ctx context.Context, serveErr <-chan error) error {
	select {
	case err := <-serveErr:
		// The listener died on its own; still run drain hooks so
		// queued work commits.
		hookErr := g.runHooks(context.Background())
		if err != nil {
			return err
		}
		return hookErr
	case <-ctx.Done():
	}
	fmt.Fprintf(g.log(), "shutdown: draining (up to %v)\n", g.drain())
	dctx, cancel := context.WithTimeout(context.Background(), g.drain())
	defer cancel()
	err := g.srv.Shutdown(dctx)
	if hookErr := g.runHooks(dctx); err == nil {
		err = hookErr
	}
	if err != nil {
		fmt.Fprintf(g.log(), "shutdown: %v\n", err)
		return err
	}
	fmt.Fprintf(g.log(), "shutdown: clean\n")
	return nil
}

func (g *Graceful) runHooks(ctx context.Context) error {
	var first error
	for _, hook := range g.OnDrain {
		if err := hook(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM. A
// second signal during the drain kills the process via the restored
// default handler, so a stuck drain can always be escaped.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
