package cfg

import "fmt"

// Loop is a natural loop: the set of blocks from which the back edges'
// sources are reachable without passing through the header.
type Loop struct {
	Header *Block
	Backs  []*Edge // back edges targeting Header
	Blocks map[int]bool
	Parent *Loop // immediately enclosing loop, or nil
}

// Inner reports whether the loop contains no nested loop.
func (l *Loop) inner(all []*Loop) bool {
	for _, o := range all {
		if o != l && o.Parent == l {
			return false
		}
	}
	return true
}

// Analyze computes reverse postorder, dominators, back edges, and
// natural loops. It is idempotent and invoked lazily by the accessors.
func (g *Graph) Analyze() {
	if g.analyzed {
		return
	}
	g.computeRPO()
	g.computeDominators()
	g.markBackEdges()
	g.findLoops()
	g.analyzed = true
}

func (g *Graph) computeRPO() {
	n := len(g.Blocks)
	seen := make([]bool, n)
	post := make([]*Block, 0, n)

	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{g.Entry, 0}}
	seen[g.Entry.ID] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Out) {
			e := f.b.Out[f.i]
			f.i++
			if !seen[e.Dst.ID] {
				seen[e.Dst.ID] = true
				stack = append(stack, frame{e.Dst, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}

	g.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.rpo = append(g.rpo, post[i])
	}
	g.rpoIndex = make([]int, n)
	for i := range g.rpoIndex {
		g.rpoIndex[i] = -1
	}
	for i, b := range g.rpo {
		g.rpoIndex[b.ID] = i
	}
}

// computeDominators implements the Cooper-Harvey-Kennedy iterative
// dominator algorithm over reverse postorder.
func (g *Graph) computeDominators() {
	g.idom = make([]*Block, len(g.Blocks))
	g.idom[g.Entry.ID] = g.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, e := range b.In {
				p := e.Src
				if g.idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b.ID] != newIdom {
				g.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *Block) *Block {
	for a != b {
		for g.rpoIndex[a.ID] > g.rpoIndex[b.ID] {
			a = g.idom[a.ID]
		}
		for g.rpoIndex[b.ID] > g.rpoIndex[a.ID] {
			b = g.idom[b.ID]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry dominates itself).
func (g *Graph) Idom(b *Block) *Block {
	g.Analyze()
	return g.idom[b.ID]
}

// Dominates reports whether a dominates b.
func (g *Graph) Dominates(a, b *Block) bool {
	g.Analyze()
	for {
		if b == a {
			return true
		}
		d := g.idom[b.ID]
		if d == b || d == nil {
			return false
		}
		b = d
	}
}

func (g *Graph) markBackEdges() {
	for _, e := range g.Edges {
		e.Back = g.dominatesNoAnalyze(e.Dst, e.Src)
	}
}

func (g *Graph) dominatesNoAnalyze(a, b *Block) bool {
	for {
		if b == a {
			return true
		}
		d := g.idom[b.ID]
		if d == b || d == nil {
			return false
		}
		b = d
	}
}

// findLoops builds the natural loop for each header (merging the bodies
// of all back edges sharing the header) and links parent loops.
func (g *Graph) findLoops() {
	byHeader := map[int]*Loop{}
	var order []*Loop
	for _, e := range g.Edges {
		if !e.Back {
			continue
		}
		l := byHeader[e.Dst.ID]
		if l == nil {
			l = &Loop{Header: e.Dst, Blocks: map[int]bool{e.Dst.ID: true}}
			byHeader[e.Dst.ID] = l
			order = append(order, l)
		}
		l.Backs = append(l.Backs, e)
		// Walk backwards from the back edge source, stopping at the header.
		stack := []*Block{e.Src}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Blocks[b.ID] {
				continue
			}
			l.Blocks[b.ID] = true
			for _, in := range b.In {
				stack = append(stack, in.Src)
			}
		}
	}
	// Parent: the smallest strictly-containing loop.
	for _, l := range order {
		var best *Loop
		for _, o := range order {
			if o == l || !o.Blocks[l.Header.ID] {
				continue
			}
			if len(o.Blocks) <= len(l.Blocks) {
				continue
			}
			if best == nil || len(o.Blocks) < len(best.Blocks) {
				best = o
			}
		}
		l.Parent = best
	}
	g.loops = order
}

// Loops returns the natural loops of the graph, one per loop header.
func (g *Graph) Loops() []*Loop {
	g.Analyze()
	return g.loops
}

// InnerLoops returns only loops with no nested loop.
func (g *Graph) InnerLoops() []*Loop {
	g.Analyze()
	var out []*Loop
	for _, l := range g.loops {
		if l.inner(g.loops) {
			out = append(out, l)
		}
	}
	return out
}

// LoopOf returns the innermost loop containing b, or nil.
func (g *Graph) LoopOf(b *Block) *Loop {
	g.Analyze()
	var best *Loop
	for _, l := range g.loops {
		if !l.Blocks[b.ID] {
			continue
		}
		if best == nil || len(l.Blocks) < len(best.Blocks) {
			best = l
		}
	}
	return best
}

// TripCount returns the average trip count of the loop implied by the
// edge profile: iterations per entry, where iterations = header
// frequency and entries = header frequency minus back edge frequency.
// Returns 0 if the loop never entered.
func (g *Graph) TripCount(l *Loop) float64 {
	var backFreq int64
	for _, e := range l.Backs {
		backFreq += e.Freq
	}
	headerFreq := g.BlockFreq(l.Header)
	entries := headerFreq - backFreq
	if entries <= 0 {
		if headerFreq > 0 {
			return float64(headerFreq)
		}
		return 0
	}
	return float64(headerFreq) / float64(entries)
}

// CheckReducible verifies that every retreating edge is a back edge by
// dominance, i.e. the graph is reducible. Reducibility is a property
// of the flow reachable from the entry, so edges from unreachable
// blocks (e.g. mid-transformation, before pruning) are ignored. The IR
// lowering only emits structured control flow, so this never fails for
// compiled code.
func (g *Graph) CheckReducible() error {
	g.Analyze()
	for _, e := range g.Edges {
		if g.rpoIndex[e.Src.ID] < 0 {
			continue
		}
		if g.rpoIndex[e.Dst.ID] <= g.rpoIndex[e.Src.ID] && !e.Back {
			return fmt.Errorf("cfg %s: irreducible edge %s", g.Name, e)
		}
	}
	return nil
}
