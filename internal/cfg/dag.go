package cfg

import (
	"fmt"
	"strings"
)

// DAGEdgeKind distinguishes real CFG edges from the dummy edges that the
// Ball-Larus conversion introduces when breaking back edges.
type DAGEdgeKind int

const (
	// RealEdge is an original CFG edge that is not a back edge.
	RealEdge DAGEdgeKind = iota
	// EntryDummy is a dummy edge entry->header standing for the start of
	// paths that begin at a loop header (after a back edge).
	EntryDummy
	// ExitDummy is a dummy edge tail->exit standing for the end of paths
	// that terminate at a loop back edge.
	ExitDummy
)

func (k DAGEdgeKind) String() string {
	switch k {
	case RealEdge:
		return "real"
	case EntryDummy:
		return "entry-dummy"
	case ExitDummy:
		return "exit-dummy"
	}
	return fmt.Sprintf("DAGEdgeKind(%d)", int(k))
}

// DAGEdge is an edge of the acyclic graph derived from a CFG. Real
// edges reference the CFG edge they came from; dummy edges reference the
// back edges they stand for. Freq is the measured frequency: the CFG
// edge's for real edges, the sum of the represented back edges' for
// dummies.
type DAGEdge struct {
	ID   int
	Src  *Block
	Dst  *Block
	Kind DAGEdgeKind
	Freq int64
	CFG  *Edge   // the original edge (real edges only)
	Back []*Edge // represented back edges (dummy edges only)
}

func (e *DAGEdge) String() string {
	switch e.Kind {
	case EntryDummy:
		return fmt.Sprintf("%s=>%s", e.Src, e.Dst)
	case ExitDummy:
		return fmt.Sprintf("%s=>%s", e.Src, e.Dst)
	}
	return fmt.Sprintf("%s->%s", e.Src, e.Dst)
}

// DAG is the acyclic form of a routine CFG used for path numbering.
// Node identity is shared with the CFG (block IDs index Out/In).
type DAG struct {
	G     *Graph
	Edges []*DAGEdge
	Out   [][]*DAGEdge // indexed by block ID
	In    [][]*DAGEdge // indexed by block ID
	Topo  []*Block     // topological order, entry first
}

// BuildDAG converts g into a DAG: back edges are removed, and for each
// loop header a dummy edge entry->header is added, and for each back
// edge source a dummy edge source->exit is added (dummy edges are
// deduplicated per header and per source, so a block sequence identifies
// a unique DAG path). Requires a reducible graph.
func BuildDAG(g *Graph) (*DAG, error) {
	if err := g.CheckReducible(); err != nil {
		return nil, err
	}
	d := &DAG{
		G:   g,
		Out: make([][]*DAGEdge, len(g.Blocks)),
		In:  make([][]*DAGEdge, len(g.Blocks)),
	}
	add := func(src, dst *Block, kind DAGEdgeKind, freq int64, cfgEdge *Edge, backs []*Edge) *DAGEdge {
		e := &DAGEdge{ID: len(d.Edges), Src: src, Dst: dst, Kind: kind, Freq: freq, CFG: cfgEdge, Back: backs}
		d.Edges = append(d.Edges, e)
		d.Out[src.ID] = append(d.Out[src.ID], e)
		d.In[dst.ID] = append(d.In[dst.ID], e)
		return e
	}

	entryDummies := map[int][]*Edge{} // header ID -> back edges
	exitDummies := map[int][]*Edge{}  // tail ID -> back edges
	var headerOrder, tailOrder []*Block
	for _, e := range g.Edges {
		if !e.Back {
			add(e.Src, e.Dst, RealEdge, e.Freq, e, nil)
			continue
		}
		if entryDummies[e.Dst.ID] == nil {
			headerOrder = append(headerOrder, e.Dst)
		}
		entryDummies[e.Dst.ID] = append(entryDummies[e.Dst.ID], e)
		if exitDummies[e.Src.ID] == nil {
			tailOrder = append(tailOrder, e.Src)
		}
		exitDummies[e.Src.ID] = append(exitDummies[e.Src.ID], e)
	}
	for _, h := range headerOrder {
		backs := entryDummies[h.ID]
		var freq int64
		for _, b := range backs {
			freq += b.Freq
		}
		add(g.Entry, h, EntryDummy, freq, nil, backs)
	}
	for _, t := range tailOrder {
		backs := exitDummies[t.ID]
		var freq int64
		for _, b := range backs {
			freq += b.Freq
		}
		add(t, g.Exit, ExitDummy, freq, nil, backs)
	}

	if err := d.topoSort(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *DAG) topoSort() error {
	n := len(d.G.Blocks)
	indeg := make([]int, n)
	for _, e := range d.Edges {
		indeg[e.Dst.ID]++
	}
	queue := make([]*Block, 0, n)
	for _, b := range d.G.Blocks {
		if indeg[b.ID] == 0 {
			queue = append(queue, b)
		}
	}
	d.Topo = d.Topo[:0]
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		d.Topo = append(d.Topo, b)
		for _, e := range d.Out[b.ID] {
			indeg[e.Dst.ID]--
			if indeg[e.Dst.ID] == 0 {
				queue = append(queue, e.Dst)
			}
		}
	}
	if len(d.Topo) != n {
		return fmt.Errorf("cfg %s: cycle remains after back edge removal", d.G.Name)
	}
	return nil
}

// RefreshFreqs re-derives DAG edge frequencies from the CFG edge
// profile: real edges copy their CFG edge's frequency and dummy edges
// sum the back edges they stand for. Call after the CFG profile
// changes.
func (d *DAG) RefreshFreqs() {
	for _, e := range d.Edges {
		switch e.Kind {
		case RealEdge:
			e.Freq = e.CFG.Freq
		default:
			var sum int64
			for _, b := range e.Back {
				sum += b.Freq
			}
			e.Freq = sum
		}
	}
}

// FindEdge returns the DAG edge src->dst of any kind, or nil.
func (d *DAG) FindEdge(src, dst *Block) *DAGEdge {
	for _, e := range d.Out[src.ID] {
		if e.Dst == dst {
			return e
		}
	}
	return nil
}

// Real returns the DAG edge corresponding to the real CFG edge
// src->dst, or nil.
func (d *DAG) Real(src, dst *Block) *DAGEdge {
	for _, e := range d.Out[src.ID] {
		if e.Kind == RealEdge && e.Dst == dst {
			return e
		}
	}
	return nil
}

// EntryDummyFor returns the dummy edge entry->header for the given loop
// header, or nil. There is at most one per header.
func (d *DAG) EntryDummyFor(header *Block) *DAGEdge {
	for _, e := range d.In[header.ID] {
		if e.Kind == EntryDummy {
			return e
		}
	}
	return nil
}

// ExitDummyFor returns the dummy edge tail->exit for the given back
// edge source, or nil. There is at most one per tail.
func (d *DAG) ExitDummyFor(tail *Block) *DAGEdge {
	for _, e := range d.Out[tail.ID] {
		if e.Kind == ExitDummy {
			return e
		}
	}
	return nil
}

// IsBranch reports whether e is a branch edge: its source block has at
// least one other outgoing DAG edge. The branch-flow metric counts
// branch edges on a path.
func (d *DAG) IsBranch(e *DAGEdge) bool {
	return len(d.Out[e.Src.ID]) >= 2
}

// NodeFreq returns the DAG-level frequency of block b: the sum of
// incoming DAG edge frequencies, or of outgoing ones for the entry.
func (d *DAG) NodeFreq(b *Block) int64 {
	var sum int64
	if b == d.G.Entry {
		for _, e := range d.Out[b.ID] {
			sum += e.Freq
		}
		return sum
	}
	for _, e := range d.In[b.ID] {
		sum += e.Freq
	}
	return sum
}

// TotalPaths counts entry->exit paths in the DAG, skipping excluded
// edges (excluded[e.ID] == true; a nil slice excludes nothing). The
// count saturates at limit; a negative limit means no saturation bound.
func (d *DAG) TotalPaths(excluded []bool, limit int64) int64 {
	counts := make([]int64, len(d.G.Blocks))
	counts[d.G.Exit.ID] = 1
	for i := len(d.Topo) - 1; i >= 0; i-- {
		b := d.Topo[i]
		if b == d.G.Exit {
			continue
		}
		var sum int64
		for _, e := range d.Out[b.ID] {
			if excluded != nil && excluded[e.ID] {
				continue
			}
			sum += counts[e.Dst.ID]
			if limit >= 0 && sum >= limit {
				sum = limit
				break
			}
		}
		counts[b.ID] = sum
	}
	return counts[d.G.Entry.ID]
}

// Path is a sequence of DAG edges from entry to exit.
type Path []*DAGEdge

// String renders the path as the block sequence it visits. Dummy edges
// print as "=>" so that a path starting at a loop header (after a back
// edge) or ending at a back edge is distinguished from one using a real
// edge between the same blocks.
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	var sb strings.Builder
	sb.WriteString(p[0].Src.String())
	for _, e := range p {
		if e.Kind == RealEdge {
			sb.WriteByte(' ')
		} else {
			sb.WriteString("=>")
		}
		sb.WriteString(e.Dst.String())
	}
	return sb.String()
}

// Branches returns the number of branch edges on the path.
func (p Path) Branches(d *DAG) int {
	n := 0
	for _, e := range p {
		if d.IsBranch(e) {
			n++
		}
	}
	return n
}

// Instrs returns the number of IR statements on the path's blocks.
func (p Path) Instrs() int {
	if len(p) == 0 {
		return 0
	}
	n := p[0].Src.Instrs
	for _, e := range p {
		n += e.Dst.Instrs
	}
	return n
}

// EnumeratePaths returns all entry->exit DAG paths, skipping excluded
// edges, up to limit paths (limit < 0 means unbounded). Intended for
// tests and small routines.
func (d *DAG) EnumeratePaths(excluded []bool, limit int) []Path {
	var out []Path
	var cur Path
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == d.G.Exit {
			cp := make(Path, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return limit < 0 || len(out) < limit
		}
		for _, e := range d.Out[b.ID] {
			if excluded != nil && excluded[e.ID] {
				continue
			}
			cur = append(cur, e)
			ok := walk(e.Dst)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	walk(d.G.Entry)
	return out
}
