package cfg_test

import (
	"math/rand"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
)

func TestDiamondBasics(t *testing.T) {
	g := cfgtest.Diamond()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(g.Blocks); got != 6 {
		t.Fatalf("blocks = %d, want 6", got)
	}
	rpo := g.RPO()
	if rpo[0] != g.Entry {
		t.Errorf("RPO[0] = %s, want entry", rpo[0])
	}
	if rpo[len(rpo)-1] != g.Exit {
		t.Errorf("RPO last = %s, want exit", rpo[len(rpo)-1])
	}
	if len(g.Loops()) != 0 {
		t.Errorf("loops = %d, want 0", len(g.Loops()))
	}
	for _, e := range g.Edges {
		if e.Back {
			t.Errorf("edge %s marked back in acyclic graph", e)
		}
	}
}

func TestDiamondDominators(t *testing.T) {
	g := cfgtest.Diamond()
	byName := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		byName[b.Name] = b
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"entry", "d", true},
		{"a", "d", true},
		{"b", "d", false},
		{"c", "d", false},
		{"a", "exit", true},
		{"d", "exit", true},
		{"exit", "d", false},
	}
	for _, c := range cases {
		if got := g.Dominates(byName[c.a], byName[c.b]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDiamondDAG(t *testing.T) {
	g := cfgtest.Diamond()
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	if len(d.Edges) != len(g.Edges) {
		t.Fatalf("DAG edges = %d, want %d (no dummies)", len(d.Edges), len(g.Edges))
	}
	if n := d.TotalPaths(nil, -1); n != 2 {
		t.Errorf("TotalPaths = %d, want 2", n)
	}
	paths := d.EnumeratePaths(nil, -1)
	if len(paths) != 2 {
		t.Fatalf("EnumeratePaths = %d, want 2", len(paths))
	}
	// Each diamond path has exactly one branch edge (out of a).
	for _, p := range paths {
		if got := p.Branches(d); got != 1 {
			t.Errorf("path %s branches = %d, want 1", p, got)
		}
	}
}

// loopGraph builds: entry -> h; h -> b1, b2; b1 -> t; b2 -> t;
// t -> h (back); t -> exit.
func loopGraph() *cfg.Graph {
	g := cfg.New("loop")
	entry := g.AddBlock("entry")
	h := g.AddBlock("h")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	tl := g.AddBlock("t")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, h)
	cfgtest.Connect(g, h, b1)
	cfgtest.Connect(g, h, b2)
	cfgtest.Connect(g, b1, tl)
	cfgtest.Connect(g, b2, tl)
	cfgtest.Connect(g, tl, h)
	cfgtest.Connect(g, tl, exit)
	g.Entry = entry
	g.Exit = exit
	return g
}

func TestLoopDetection(t *testing.T) {
	g := loopGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "h" {
		t.Errorf("header = %s, want h", l.Header)
	}
	if len(l.Backs) != 1 || l.Backs[0].Src.Name != "t" {
		t.Errorf("back edges = %v", l.Backs)
	}
	if len(l.Blocks) != 4 { // h, b1, b2, t
		t.Errorf("loop body size = %d, want 4", len(l.Blocks))
	}
	if err := g.CheckReducible(); err != nil {
		t.Errorf("CheckReducible: %v", err)
	}
}

func TestLoopDAGAndDummies(t *testing.T) {
	g := loopGraph()
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	// Back edge t->h removed; dummies entry=>h and t=>exit added.
	if len(d.Edges) != len(g.Edges)-1+2 {
		t.Fatalf("DAG edges = %d, want %d", len(d.Edges), len(g.Edges)+1)
	}
	byName := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		byName[b.Name] = b
	}
	ed := d.EntryDummyFor(byName["h"])
	if ed == nil || ed.Src != g.Entry {
		t.Fatalf("EntryDummyFor(h) = %v", ed)
	}
	xd := d.ExitDummyFor(byName["t"])
	if xd == nil || xd.Dst != g.Exit {
		t.Fatalf("ExitDummyFor(t) = %v", xd)
	}
	// Paths: {entry->h, entry=>h} x {b1, b2} x {t->exit, t=>exit} = 8.
	if n := d.TotalPaths(nil, -1); n != 8 {
		t.Errorf("TotalPaths = %d, want 8", n)
	}
	if n := len(d.EnumeratePaths(nil, -1)); n != 8 {
		t.Errorf("EnumeratePaths = %d, want 8", n)
	}
}

func TestTripCount(t *testing.T) {
	g := loopGraph()
	byName := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		byName[b.Name] = b
	}
	// 10 calls; each call iterates the loop 5 times: header freq 50,
	// back edge 40, exit 10.
	g.Calls = 10
	g.FindEdge(g.Entry, byName["h"]).Freq = 10
	g.FindEdge(byName["h"], byName["b1"]).Freq = 30
	g.FindEdge(byName["h"], byName["b2"]).Freq = 20
	g.FindEdge(byName["b1"], byName["t"]).Freq = 30
	g.FindEdge(byName["b2"], byName["t"]).Freq = 20
	g.FindEdge(byName["t"], byName["h"]).Freq = 40
	g.FindEdge(byName["t"], g.Exit).Freq = 10
	if err := g.CheckFlow(); err != nil {
		t.Fatalf("CheckFlow: %v", err)
	}
	l := g.Loops()[0]
	if got := g.TripCount(l); got != 5 {
		t.Errorf("TripCount = %v, want 5", got)
	}
}

func TestNestedLoops(t *testing.T) {
	// entry -> oh; oh -> ih; ih -> ib; ib -> ih (back); ib -> ot;
	// ot -> oh (back); ot -> exit.
	g := cfg.New("nested")
	entry := g.AddBlock("entry")
	oh := g.AddBlock("oh")
	ih := g.AddBlock("ih")
	ib := g.AddBlock("ib")
	ot := g.AddBlock("ot")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, oh)
	cfgtest.Connect(g, oh, ih)
	cfgtest.Connect(g, ih, ib)
	cfgtest.Connect(g, ib, ih)
	cfgtest.Connect(g, ib, ot)
	cfgtest.Connect(g, ot, oh)
	cfgtest.Connect(g, ot, exit)
	g.Entry = entry
	g.Exit = exit
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var inner, outer *cfg.Loop
	for _, l := range loops {
		if l.Header == ih {
			inner = l
		}
		if l.Header == oh {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing inner or outer loop")
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if outer.Parent != nil {
		t.Errorf("outer.Parent = %v, want nil", outer.Parent)
	}
	il := g.InnerLoops()
	if len(il) != 1 || il[0] != inner {
		t.Errorf("InnerLoops = %v", il)
	}
	if got := g.LoopOf(ib); got != inner {
		t.Errorf("LoopOf(ib) = %v, want inner", got)
	}
	if got := g.LoopOf(ot); got != outer {
		t.Errorf("LoopOf(ot) = %v, want outer", got)
	}
}

func TestSelfLoop(t *testing.T) {
	g := cfg.New("self")
	entry := g.AddBlock("entry")
	b := g.AddBlock("b")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, b)
	cfgtest.Connect(g, b, b)
	cfgtest.Connect(g, b, exit)
	g.Entry = entry
	g.Exit = exit
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	loops := g.Loops()
	if len(loops) != 1 || len(loops[0].Blocks) != 1 {
		t.Fatalf("self loop detection failed: %v", loops)
	}
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	// Paths: {entry->b, entry=>b} x {b->exit, b=>exit} = 4.
	if n := d.TotalPaths(nil, -1); n != 4 {
		t.Errorf("TotalPaths = %d, want 4", n)
	}
}

func TestTotalPathsExclusionAndLimit(t *testing.T) {
	g := cfgtest.Diamond()
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	excluded := make([]bool, len(d.Edges))
	for _, e := range d.Edges {
		if e.Src.Name == "a" && e.Dst.Name == "b" {
			excluded[e.ID] = true
		}
	}
	if n := d.TotalPaths(excluded, -1); n != 1 {
		t.Errorf("TotalPaths with exclusion = %d, want 1", n)
	}
	if n := d.TotalPaths(nil, 1); n != 1 {
		t.Errorf("TotalPaths with limit 1 = %d, want 1 (saturated)", n)
	}
	paths := d.EnumeratePaths(excluded, -1)
	if len(paths) != 1 {
		t.Errorf("EnumeratePaths with exclusion = %d, want 1", len(paths))
	}
}

func TestParallelEdgeError(t *testing.T) {
	g := cfg.New("par")
	a := g.AddBlock("a")
	b := g.AddBlock("b")
	if _, err := g.Connect(a, b); err != nil {
		t.Fatalf("first edge: %v", err)
	}
	if _, err := g.Connect(a, b); err == nil {
		t.Error("expected error on parallel edge")
	}
}

func TestParallelEdgeTestHelperPanics(t *testing.T) {
	g := cfg.New("par")
	a := g.AddBlock("a")
	b := g.AddBlock("b")
	cfgtest.Connect(g, a, b)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on parallel edge")
		}
	}()
	cfgtest.Connect(g, a, b)
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	g := cfg.New("bad")
	a := g.AddBlock("a")
	b := g.AddBlock("b")
	cfgtest.Connect(g, a, b)
	if err := g.Validate(); err == nil {
		t.Error("Validate passed with nil entry/exit")
	}
	g.Entry = a
	g.Exit = b
	c := g.AddBlock("c") // unreachable
	if err := g.Validate(); err == nil {
		t.Error("Validate passed with unreachable block")
	}
	cfgtest.Connect(g, a, c) // now c cannot reach exit
	if err := g.Validate(); err == nil {
		t.Error("Validate passed with block that cannot reach exit")
	}
}

func TestRandomGraphProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		g := cfgtest.Random(rng, 3+rng.Intn(20))
		if err := g.Validate(); err != nil {
			t.Fatalf("iter %d: Validate: %v\n%s", i, err, g.Dump())
		}
		if err := g.CheckReducible(); err != nil {
			t.Fatalf("iter %d: CheckReducible: %v\n%s", i, err, g.Dump())
		}
		d, err := cfg.BuildDAG(g)
		if err != nil {
			t.Fatalf("iter %d: BuildDAG: %v\n%s", i, err, g.Dump())
		}
		// Topological order covers all blocks, entry first, exit last.
		if d.Topo[0] != g.Entry {
			t.Fatalf("iter %d: topo[0] != entry", i)
		}
		if d.Topo[len(d.Topo)-1] != g.Exit {
			t.Fatalf("iter %d: topo last != exit", i)
		}
		// Path count matches enumeration (bounded).
		n := d.TotalPaths(nil, 100000)
		if n < 100000 {
			paths := d.EnumeratePaths(nil, -1)
			if int64(len(paths)) != n {
				t.Fatalf("iter %d: TotalPaths=%d enumerate=%d\n%s", i, n, len(paths), g.Dump())
			}
		}
	}
}

func TestRandomProfileFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		g := cfgtest.Random(rng, 3+rng.Intn(15))
		cfgtest.Profile(g, rng, 50, 200)
		if err := g.CheckFlow(); err != nil {
			t.Fatalf("iter %d: %v\n%s", i, err, g.Dump())
		}
		// DAG node frequencies are consistent: entry out == exit in.
		d, err := cfg.BuildDAG(g)
		if err != nil {
			t.Fatalf("iter %d: BuildDAG: %v", i, err)
		}
		if in, out := d.NodeFreq(g.Exit), d.NodeFreq(g.Entry); in != out {
			t.Fatalf("iter %d: DAG flow entry=%d exit=%d", i, out, in)
		}
		for _, b := range g.Blocks {
			if b == g.Entry || b == g.Exit {
				continue
			}
			var in, out int64
			for _, e := range d.In[b.ID] {
				in += e.Freq
			}
			for _, e := range d.Out[b.ID] {
				out += e.Freq
			}
			if in != out {
				t.Fatalf("iter %d: DAG flow not conserved at %s: in=%d out=%d", i, b, in, out)
			}
		}
	}
}
