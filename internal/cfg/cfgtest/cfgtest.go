// Package cfgtest generates random structured control-flow graphs and
// flow-conserving edge profiles for property-based testing of the path
// profiling algorithms. Generated graphs are always reducible because
// they are built from nested structured regions (sequences, diamonds,
// one-armed ifs, while and do-while loops).
package cfgtest

import (
	"math/rand"

	"pathprof/internal/cfg"
)

// Connect adds the edge src->dst to g and returns it, panicking on a
// structural error. Test graphs are hand-built, so a parallel edge is a
// bug in the test itself; the library API (cfg.Graph.Connect) returns
// the error instead.
func Connect(g *cfg.Graph, src, dst *cfg.Block) *cfg.Edge {
	e, err := g.Connect(src, dst)
	if err != nil {
		panic("cfgtest: " + err.Error())
	}
	return e
}

// Random builds a random structured CFG with roughly size interior
// blocks. It always has distinct entry and exit blocks and validates.
func Random(rng *rand.Rand, size int) *cfg.Graph {
	g := cfg.New("random")
	entry := g.AddBlock("entry")
	budget := size
	head, tail := genRegion(g, rng, 3, &budget)
	exit := g.AddBlock("exit")
	Connect(g, entry, head)
	Connect(g, tail, exit)
	g.Entry = entry
	g.Exit = exit
	for _, b := range g.Blocks {
		b.Instrs = 1 + rng.Intn(8)
	}
	if err := g.Validate(); err != nil {
		panic("cfgtest: generated invalid graph: " + err.Error())
	}
	return g
}

// genRegion creates a fresh single-entry single-exit region and returns
// its head and tail blocks. depth bounds nesting; budget bounds size.
func genRegion(g *cfg.Graph, rng *rand.Rand, depth int, budget *int) (head, tail *cfg.Block) {
	*budget--
	if depth <= 0 || *budget <= 0 {
		b := g.AddBlock("")
		return b, b
	}
	switch rng.Intn(6) {
	case 0: // leaf
		b := g.AddBlock("")
		return b, b
	case 1: // sequence
		h1, t1 := genRegion(g, rng, depth-1, budget)
		h2, t2 := genRegion(g, rng, depth-1, budget)
		Connect(g, t1, h2)
		return h1, t2
	case 2: // if-else
		c := g.AddBlock("")
		j := g.AddBlock("")
		h1, t1 := genRegion(g, rng, depth-1, budget)
		h2, t2 := genRegion(g, rng, depth-1, budget)
		Connect(g, c, h1)
		Connect(g, c, h2)
		Connect(g, t1, j)
		Connect(g, t2, j)
		return c, j
	case 3: // if-then
		c := g.AddBlock("")
		j := g.AddBlock("")
		h1, t1 := genRegion(g, rng, depth-1, budget)
		Connect(g, c, h1)
		Connect(g, c, j)
		Connect(g, t1, j)
		return c, j
	case 4: // while loop: header tests, body loops back
		h := g.AddBlock("")
		bh, bt := genRegion(g, rng, depth-1, budget)
		Connect(g, h, bh)
		Connect(g, bt, h) // back edge
		return h, h
	default: // do-while loop: body then latch test
		bh, bt := genRegion(g, rng, depth-1, budget)
		latch := g.AddBlock("")
		Connect(g, bt, latch)
		Connect(g, latch, bh) // back edge
		return bh, latch
	}
}

// Profile fills in a flow-conserving edge profile by simulating walks
// random walks from entry to exit. Walks pick a uniformly random
// successor until they exceed maxSteps, after which they follow a
// shortest path to the exit, guaranteeing termination.
func Profile(g *cfg.Graph, rng *rand.Rand, walks, maxSteps int) {
	for _, e := range g.Edges {
		e.Freq = 0
	}
	dist := distToExit(g)
	g.Calls = int64(walks)
	for w := 0; w < walks; w++ {
		b := g.Entry
		steps := 0
		for b != g.Exit {
			var e *cfg.Edge
			if steps < maxSteps {
				e = b.Out[rng.Intn(len(b.Out))]
			} else {
				for _, cand := range b.Out {
					if e == nil || dist[cand.Dst.ID] < dist[e.Dst.ID] {
						e = cand
					}
				}
			}
			e.Freq++
			b = e.Dst
			steps++
		}
	}
}

// PathCount is a ground-truth Ball-Larus path and its execution count.
type PathCount struct {
	Path  cfg.Path
	Count int64
}

// ProfilePaths fills in a flow-conserving edge profile (like Profile)
// and additionally returns the exact Ball-Larus path profile of the
// simulated walks: paths are truncated at back edges (ending with the
// tail's exit dummy and restarting with the header's entry dummy), per
// the path semantics of Ball-Larus profiling.
func ProfilePaths(g *cfg.Graph, d *cfg.DAG, rng *rand.Rand, walks, maxSteps int) []PathCount {
	for _, e := range g.Edges {
		e.Freq = 0
	}
	dist := distToExit(g)
	g.Calls = int64(walks)
	counts := map[string]*PathCount{}
	var order []string
	record := func(p cfg.Path) {
		key := p.String()
		pc := counts[key]
		if pc == nil {
			cp := make(cfg.Path, len(p))
			copy(cp, p)
			pc = &PathCount{Path: cp}
			counts[key] = pc
			order = append(order, key)
		}
		pc.Count++
	}
	for w := 0; w < walks; w++ {
		b := g.Entry
		steps := 0
		var cur cfg.Path
		for b != g.Exit {
			var e *cfg.Edge
			if steps < maxSteps {
				e = b.Out[rng.Intn(len(b.Out))]
			} else {
				for _, cand := range b.Out {
					if e == nil || dist[cand.Dst.ID] < dist[e.Dst.ID] {
						e = cand
					}
				}
			}
			e.Freq++
			if e.Back {
				cur = append(cur, d.ExitDummyFor(e.Src))
				record(cur)
				cur = cur[:0]
				cur = append(cur, d.EntryDummyFor(e.Dst))
			} else {
				cur = append(cur, d.Real(e.Src, e.Dst))
			}
			b = e.Dst
			steps++
		}
		record(cur)
	}
	d.RefreshFreqs()
	out := make([]PathCount, 0, len(order))
	for _, k := range order {
		out = append(out, *counts[k])
	}
	return out
}

func distToExit(g *cfg.Graph) []int {
	const inf = 1 << 30
	dist := make([]int, len(g.Blocks))
	for i := range dist {
		dist[i] = inf
	}
	dist[g.Exit.ID] = 0
	queue := []*cfg.Block{g.Exit}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, e := range b.In {
			if dist[e.Src.ID] > dist[b.ID]+1 {
				dist[e.Src.ID] = dist[b.ID] + 1
				queue = append(queue, e.Src)
			}
		}
	}
	return dist
}

// Diamond builds the canonical two-path diamond graph used in many
// tests: entry -> a -> {b, c} -> d -> exit.
func Diamond() *cfg.Graph {
	g := cfg.New("diamond")
	entry := g.AddBlock("entry")
	a := g.AddBlock("a")
	b := g.AddBlock("b")
	c := g.AddBlock("c")
	d := g.AddBlock("d")
	exit := g.AddBlock("exit")
	Connect(g, entry, a)
	Connect(g, a, b)
	Connect(g, a, c)
	Connect(g, b, d)
	Connect(g, c, d)
	Connect(g, d, exit)
	g.Entry = entry
	g.Exit = exit
	return g
}
