// Package cfg provides control-flow graphs and the graph analyses that
// path profiling builds on: reverse postorder, dominators, natural-loop
// detection, and the Ball-Larus conversion of a CFG into a directed
// acyclic graph (DAG) by breaking back edges and adding dummy edges.
//
// A Graph is a per-routine control-flow graph with a single entry and a
// single exit block. Edges carry measured execution frequencies (filled
// in from an edge profile); blocks carry an instruction count used for
// size and cost bookkeeping.
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a basic block in a control-flow graph. Blocks are identified
// by their index in Graph.Blocks.
type Block struct {
	ID     int
	Name   string
	Instrs int // number of IR statements in the block

	Out []*Edge
	In  []*Edge
}

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// Edge is a directed control-flow edge. Freq is the measured execution
// frequency from an edge profile (zero until a profile is applied).
// Back is set by Analyze for loop back edges (target dominates source).
type Edge struct {
	ID   int
	Src  *Block
	Dst  *Block
	Freq int64
	Back bool
}

func (e *Edge) String() string {
	if e == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s->%s", e.Src, e.Dst)
}

// Graph is a single-entry, single-exit control-flow graph for one
// routine. Calls is the number of times the routine was invoked in the
// profiled run; it is the execution frequency of the entry block.
type Graph struct {
	Name   string
	Blocks []*Block
	Edges  []*Edge
	Entry  *Block
	Exit   *Block
	Calls  int64

	rpo      []*Block
	rpoIndex []int
	idom     []*Block
	loops    []*Loop
	analyzed bool
}

// New returns an empty graph named name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddBlock appends a new block with the given name and returns it.
func (g *Graph) AddBlock(name string) *Block {
	b := &Block{ID: len(g.Blocks), Name: name}
	g.Blocks = append(g.Blocks, b)
	g.analyzed = false
	return b
}

// Connect adds an edge from src to dst and returns it. Parallel edges
// between the same pair of blocks are not allowed; Connect returns an
// error if one would be created, so malformed graph input surfaces as a
// diagnostic instead of a crash. (The IR lowering never produces one;
// hand-built test graphs use cfgtest.Connect, which panics.)
func (g *Graph) Connect(src, dst *Block) (*Edge, error) {
	for _, e := range src.Out {
		if e.Dst == dst {
			return nil, fmt.Errorf("cfg: parallel edge %s->%s in %s", src, dst, g.Name)
		}
	}
	e := &Edge{ID: len(g.Edges), Src: src, Dst: dst}
	g.Edges = append(g.Edges, e)
	src.Out = append(src.Out, e)
	dst.In = append(dst.In, e)
	g.analyzed = false
	return e, nil
}

// FindEdge returns the edge src->dst, or nil if there is none.
func (g *Graph) FindEdge(src, dst *Block) *Edge {
	for _, e := range src.Out {
		if e.Dst == dst {
			return e
		}
	}
	return nil
}

// BlockFreq returns the execution frequency of b implied by the edge
// profile: the sum of incoming edge frequencies, or Calls for the entry
// block.
func (g *Graph) BlockFreq(b *Block) int64 {
	if b == g.Entry {
		return g.Calls
	}
	var sum int64
	for _, e := range b.In {
		sum += e.Freq
	}
	return sum
}

// Validate checks structural invariants: entry and exit are set, entry
// has no predecessors, exit has no successors, every block is reachable
// from entry, and exit is reachable from every block.
func (g *Graph) Validate() error {
	if g.Entry == nil || g.Exit == nil {
		return fmt.Errorf("cfg %s: entry or exit not set", g.Name)
	}
	if len(g.Entry.In) != 0 {
		return fmt.Errorf("cfg %s: entry block has predecessors", g.Name)
	}
	if len(g.Exit.Out) != 0 {
		return fmt.Errorf("cfg %s: exit block has successors", g.Name)
	}
	fwd := g.reachableFrom(g.Entry, false)
	bwd := g.reachableFrom(g.Exit, true)
	for _, b := range g.Blocks {
		if !fwd[b.ID] {
			return fmt.Errorf("cfg %s: block %s unreachable from entry", g.Name, b)
		}
		if !bwd[b.ID] {
			return fmt.Errorf("cfg %s: exit unreachable from block %s", g.Name, b)
		}
	}
	return nil
}

func (g *Graph) reachableFrom(start *Block, backward bool) []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{start}
	seen[start.ID] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		edges := b.Out
		if backward {
			edges = b.In
		}
		for _, e := range edges {
			n := e.Dst
			if backward {
				n = e.Src
			}
			if !seen[n.ID] {
				seen[n.ID] = true
				stack = append(stack, n)
			}
		}
	}
	return seen
}

// RPO returns the blocks in reverse postorder of a depth-first search
// from the entry block. The result is cached by Analyze.
func (g *Graph) RPO() []*Block {
	g.Analyze()
	return g.rpo
}

// RPOIndex returns the reverse-postorder position of each block, indexed
// by block ID.
func (g *Graph) RPOIndex() []int {
	g.Analyze()
	return g.rpoIndex
}

// Dump renders the graph as text, one block per line with successors and
// edge frequencies, for debugging and golden tests.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s (entry=%s exit=%s calls=%d)\n", g.Name, g.Entry, g.Exit, g.Calls)
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  %s [%d instrs]:", b, b.Instrs)
		outs := append([]*Edge(nil), b.Out...)
		sort.Slice(outs, func(i, j int) bool { return outs[i].Dst.ID < outs[j].Dst.ID })
		for _, e := range outs {
			tag := ""
			if e.Back {
				tag = " back"
			}
			fmt.Fprintf(&sb, " ->%s(%d%s)", e.Dst, e.Freq, tag)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CheckFlow verifies flow conservation of the edge profile: for every
// block other than entry and exit, the sum of incoming frequencies must
// equal the sum of outgoing frequencies; entry emits Calls, exit absorbs
// Calls. Profiles produced by the VM always satisfy this.
func (g *Graph) CheckFlow() error {
	for _, b := range g.Blocks {
		var in, out int64
		for _, e := range b.In {
			in += e.Freq
		}
		for _, e := range b.Out {
			out += e.Freq
		}
		if b == g.Entry {
			in += g.Calls
		}
		if b == g.Exit {
			out += g.Calls
		}
		if in != out {
			return fmt.Errorf("cfg %s: flow not conserved at %s: in=%d out=%d", g.Name, b, in, out)
		}
	}
	return nil
}
