package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestFoldDeterministicAcrossWorkers distributes one fixed workload of
// counter increments and histogram observations over 1/2/4/8 worker
// cells and demands the folded values — and the rendered exposition —
// come out identical: the fold must not depend on how work sharded.
func TestFoldDeterministicAcrossWorkers(t *testing.T) {
	const observations = 1000
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		r := NewRegistry(workers)
		c := r.Counter("ppp_test_total", "test counter")
		h := r.Histogram("ppp_test_len", "test histogram", []int64{1, 4, 16})
		for i := 0; i < observations; i++ {
			w := i % workers
			c.Cell(w).Inc()
			c.Cell(w).Add(2)
			h.Cell(w).Observe(int64(i % 40))
		}
		if got := c.Value(); got != 3*observations {
			t.Fatalf("workers=%d: counter folded to %d, want %d", workers, got, 3*observations)
		}
		if got := h.Count(); got != observations {
			t.Fatalf("workers=%d: histogram count %d, want %d", workers, got, observations)
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("workers=%d: WritePrometheus: %v", workers, err)
		}
		if want == "" {
			want = buf.String()
		} else if buf.String() != want {
			t.Errorf("workers=%d: exposition differs from workers=1:\n%s", workers, buf.String())
		}
	}
}

// TestNilSinkZeroAlloc is the nil-receiver contract: every sink type
// accepts operations on a nil receiver without allocating.
func TestNilSinkZeroAlloc(t *testing.T) {
	var (
		c  *Cell
		hc *HistCell
		g  *Gauge
		tr *Trace
	)
	ev := Event{Unit: "u", Routine: "r", Kind: EvSkip}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		hc.Observe(7)
		g.Set(1.5)
		tr.Emit(ev)
	})
	if allocs != 0 {
		t.Errorf("nil-sink operations allocated %.1f/op, want 0", allocs)
	}
	var reg *Registry
	if reg.Counter("x", "").Cell(0) != nil {
		t.Error("nil registry should chain to a nil cell")
	}
	if reg.Trace() != nil || reg.Workers() != 0 {
		t.Error("nil registry accessors should return zero values")
	}
	if NewVMMetrics(nil) != nil {
		t.Error("NewVMMetrics(nil) should be nil")
	}
	cells := (*VMMetrics)(nil).Cells(0)
	allocs = testing.AllocsPerRun(1000, func() {
		cells.Transitions.Inc()
		cells.Ops.Add(4)
		cells.PathLen.Observe(2)
	})
	if allocs != 0 {
		t.Errorf("zero VMCells operations allocated %.1f/op, want 0", allocs)
	}
}

// TestInstalledSinkZeroAlloc is the other half of the contract: with a
// real registry installed, the hot-path cell operations still allocate
// nothing per operation.
func TestInstalledSinkZeroAlloc(t *testing.T) {
	r := NewRegistry(2)
	m := NewVMMetrics(r)
	cells := m.Cells(0)
	allocs := testing.AllocsPerRun(1000, func() {
		cells.Transitions.Inc()
		cells.Ops.Add(4)
		cells.TableIncs.Inc()
		cells.ColdBumps.Inc()
		cells.Paths.Inc()
		cells.PathLen.Observe(9)
	})
	if allocs != 0 {
		t.Errorf("installed-sink operations allocated %.1f/op, want 0", allocs)
	}
	// AllocsPerRun makes one warm-up call before its measured runs.
	if got := m.Transitions.Value(); got != 1001 {
		t.Errorf("transitions folded to %d, want 1001", got)
	}
}

// TestWritePrometheusRoundTrip renders a populated registry twice
// (byte-identical), and feeds the output through ValidatePrometheus.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry(4)
	r.Counter(`ppp_rt_total{workload="mcf"}`, "labeled counter").Cell(1).Add(42)
	r.Counter(`ppp_rt_total{workload="gzip"}`, "labeled counter").Cell(2).Add(7)
	r.Gauge(`ppp_rt_ratio{workload="mcf"}`, "labeled gauge").Set(0.875)
	h := r.Histogram("ppp_rt_len", "histogram", []int64{1, 2, 4})
	for i := int64(0); i < 10; i++ {
		h.Cell(int(i) % 4).Observe(i)
	}
	r.Trace().Emit(Event{Unit: "u", Routine: "f", Kind: EvSkip, Flow: 5})

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders over the same state differ")
	}
	if err := ValidatePrometheus(bytes.NewReader(a.Bytes())); err != nil {
		t.Errorf("rendered exposition does not validate: %v", err)
	}
	for _, want := range []string{
		`ppp_rt_total{workload="mcf"} 42`,
		`ppp_rt_total{workload="gzip"} 7`,
		`ppp_rt_ratio{workload="mcf"} 0.875`,
		`ppp_rt_len_bucket{le="2"}`,
		"ppp_rt_len_count 10",
		"ppp_trace_events_total 1",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad metric name":   "9bad_name 1\n",
		"unterminated":      `x{a="b" 1` + "\n",
		"unquoted label":    "x{a=b} 1\n",
		"unparseable value": "x{} notanumber\n",
		"bad TYPE":          "# TYPE x frobnitz\nx 1\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if err := ValidatePrometheus(strings.NewReader("# just a comment\nok_name 1 1234\n")); err != nil {
		t.Errorf("valid sample with timestamp rejected: %v", err)
	}
}

// TestTraceRingBound proves the ring keeps the newest events and
// accounts for drops.
func TestTraceRingBound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Unit: "u", Routine: "f", Kind: EvSkip, Flow: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d events, want 4", tr.Len())
	}
	emitted, dropped := tr.Stats()
	if emitted != 10 || dropped != 6 {
		t.Errorf("stats = (%d emitted, %d dropped), want (10, 6)", emitted, dropped)
	}
	evs := tr.Snapshot()
	for i, e := range evs {
		if want := int64(6 + i); e.Flow != want {
			t.Errorf("snapshot[%d].Flow = %d, want %d (oldest dropped first)", i, e.Flow, want)
		}
	}
}

// TestTraceExportDeterministic emits the same per-routine event
// sequences from concurrently running goroutines, twice, and demands
// byte-identical JSONL and Chrome exports: global interleaving varies,
// but the exported order must not.
func TestTraceExportDeterministic(t *testing.T) {
	emitAll := func(goroutines int) *Trace {
		tr := NewTrace(0)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				routine := fmt.Sprintf("fn%d", g)
				for i := 0; i < 50; i++ {
					tr.Emit(Event{
						Unit: "bench/PPP", Routine: routine, Kind: EvColdGlobal,
						Edge: fmt.Sprintf("b%d->b%d", i, i+1), Flow: int64(i),
						Detail: "global criterion",
					})
				}
			}(g)
		}
		wg.Wait()
		return tr
	}
	var jsonl, chrome [2]bytes.Buffer
	for rep := 0; rep < 2; rep++ {
		tr := emitAll(8)
		if err := tr.WriteJSONL(&jsonl[rep]); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChrome(&chrome[rep]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(jsonl[0].Bytes(), jsonl[1].Bytes()) {
		t.Error("JSONL exports differ across identical concurrent runs")
	}
	if !bytes.Equal(chrome[0].Bytes(), chrome[1].Bytes()) {
		t.Error("Chrome exports differ across identical concurrent runs")
	}
	if strings.Contains(jsonl[0].String(), `"seq"`) {
		t.Error("JSONL export leaks the nondeterministic sequence number")
	}
}

func TestTopLoss(t *testing.T) {
	tr := NewTrace(0)
	tr.Emit(Event{Unit: "a", Routine: "f", Kind: EvPushCombine, Flow: 999}) // not lossy
	tr.Emit(Event{Unit: "a", Routine: "f", Kind: EvColdGlobal, Flow: 10})
	tr.Emit(Event{Unit: "a", Routine: "g", Kind: EvLCSkip, Flow: 40})
	tr.Emit(Event{Unit: "a", Routine: "h", Kind: EvSkip, Flow: 40}) // ties lose to earlier Seq
	tr.Emit(Event{Unit: "b", Routine: "f", Kind: EvSkip, Flow: 500})

	ev, ok := tr.TopLoss("a")
	if !ok || ev.Routine != "g" || ev.Flow != 40 {
		t.Errorf("TopLoss(a) = %+v ok=%v, want routine g flow 40", ev, ok)
	}
	if _, ok := tr.TopLoss("missing"); ok {
		t.Error("TopLoss on an absent unit reported an event")
	}
	if _, ok := (*Trace)(nil).TopLoss("a"); ok {
		t.Error("TopLoss on a nil trace reported an event")
	}
}
