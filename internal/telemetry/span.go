package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// SpanStage names one stage of the profile service's ingest
// lifecycle. Stages are ordered: sorting a trace's spans by stage rank
// reconstructs the request's journey from client send to ack.
type SpanStage int

const (
	// StageClientSend: one client publish attempt (serve.Client).
	StageClientSend SpanStage = iota
	// StageAdmit: HTTP admission — body read, decode, quarantine check.
	StageAdmit
	// StageQueueWait: time spent in the bounded ingest queue.
	StageQueueWait
	// StageCommitMerge: the committer folding the batch into the
	// aggregate clone.
	StageCommitMerge
	// StageStoreSave: the durable store save that makes the batch
	// ackable.
	StageStoreSave
	// StageAck: end-to-end admission-to-ack, the latency a client
	// observes server-side.
	StageAck
)

var spanStageNames = [...]string{
	StageClientSend:  "client-send",
	StageAdmit:       "admit",
	StageQueueWait:   "queue-wait",
	StageCommitMerge: "commit-merge",
	StageStoreSave:   "store-save",
	StageAck:         "ack",
}

func (s SpanStage) String() string {
	if s >= 0 && int(s) < len(spanStageNames) {
		return spanStageNames[s]
	}
	return "unknown"
}

// Span is one request-scoped lifecycle record: which trace it belongs
// to, which stage it measures, and the measured duration. One trace ID
// stitches a client's retry attempts to the committer's batch work.
//
// DurUS and Seq are live-only observability: the deterministic JSONL
// and Chrome exports exclude both (durations differ across reruns,
// sequence numbers across interleavings), so two identically-seeded
// runs export byte-identical span streams at any worker count. Timing
// lives in the stage latency histograms and the live dashboard.
type Span struct {
	Seq     int64 // global emission order within one ring
	Trace   string
	Tenant  string
	Stage   SpanStage
	Attempt int
	Status  int   // HTTP status of the stage outcome; 0 = in-band ok
	DurUS   int64 // measured stage duration, microseconds (live-only)
	Detail  string
}

// DefaultSpanCap bounds the ring when NewSpanRing is given 0.
const DefaultSpanCap = 1 << 14

// SpanRing is a bounded ring of request spans, the Span sibling of the
// decision-trace ring: emission is mutex-protected, the storage is
// fully preallocated so Emit never allocates, and a nil *SpanRing is a
// valid no-op sink.
type SpanRing struct {
	mu      sync.Mutex
	ringCap int
	spans   []Span
	start   int // index of the oldest span once the ring wrapped
	seq     int64
	dropped int64
}

// NewSpanRing returns a ring holding at most capacity spans
// (DefaultSpanCap when 0); the oldest spans drop first. The backing
// array is allocated up front so the emission path never grows it.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRing{ringCap: capacity, spans: make([]Span, 0, capacity)}
}

// Emit records a span, assigning its sequence number. Nil-safe and
// allocation-free: the span struct is copied into preallocated ring
// storage under the ring mutex (the append never grows the slice
// past the preallocated capacity; tests assert 0 allocs/op).
func (r *SpanRing) Emit(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	sp.Seq = r.seq
	if len(r.spans) < r.ringCap {
		r.spans = append(r.spans, sp)
	} else {
		r.spans[r.start] = sp
		r.start = (r.start + 1) % r.ringCap
		r.dropped++
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Stats returns total emitted and dropped span counts.
func (r *SpanRing) Stats() (emitted, dropped int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.dropped
}

// Snapshot copies the retained spans in emission order.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.start:]...)
	out = append(out, r.spans[:r.start]...)
	return out
}

// sortedSnapshot orders spans by (Trace, Stage, Attempt, Status,
// Detail, Seq). Concurrent emitters interleave sequence numbers
// nondeterministically, but a trace's spans carry deterministic
// content, so this sort — with Seq and DurUS excluded from the export
// — makes two identical runs export byte-identical span streams at
// any parallelism.
//
//ppp:deterministic
func (r *SpanRing) sortedSnapshot() []Span {
	sps := r.Snapshot()
	sort.SliceStable(sps, func(i, j int) bool {
		a, b := &sps[i], &sps[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Seq < b.Seq
	})
	return sps
}

// jsonSpan is the deterministic JSONL shape: Seq and DurUS are
// deliberately excluded (see sortedSnapshot).
type jsonSpan struct {
	Trace   string `json:"trace"`
	Tenant  string `json:"tenant"`
	Stage   string `json:"stage"`
	Attempt int    `json:"attempt"`
	Status  int    `json:"status"`
	Detail  string `json:"detail,omitempty"`
}

// WriteJSONL exports the spans as JSON lines, deterministically: two
// identically-seeded runs produce byte-identical output regardless of
// worker count. Nil-safe (writes nothing).
//
//ppp:deterministic
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range r.sortedSnapshot() {
		js := jsonSpan{
			Trace: sp.Trace, Tenant: sp.Tenant, Stage: sp.Stage.String(),
			Attempt: sp.Attempt, Status: sp.Status, Detail: sp.Detail,
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeSpanEvents renders spans as Chrome trace_event records:
// tenants map to processes ("span:<tenant>") and trace IDs to
// threads, so one trace's stages line up on one row. Timestamps are
// deterministic sorted ranks offset by tsBase; pids start after
// pidBase so span processes never collide with decision-trace units.
//
//ppp:deterministic
func (r *SpanRing) chromeSpanEvents(pidBase, tsBase int) []chromeEvent {
	if r == nil {
		return nil
	}
	sps := r.sortedSnapshot()
	pids := map[string]int{}
	tids := map[string]int{}
	var out []chromeEvent
	for i, sp := range sps {
		pname := "span:" + sp.Tenant
		pid, ok := pids[pname]
		if !ok {
			pid = pidBase + len(pids) + 1
			pids[pname] = pid
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: chromeArgs{Name: pname},
			})
		}
		tkey := pname + "\x00" + sp.Trace
		tid, ok := tids[tkey]
		if !ok {
			tid = len(tids) + 1
			tids[tkey] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: chromeArgs{Name: sp.Trace},
			})
		}
		out = append(out, chromeEvent{
			Name: sp.Stage.String(), Cat: "ppp-span", Ph: "X",
			Ts: int64(tsBase + i), Dur: 1, Pid: pid, Tid: tid,
			Args: chromeArgs{
				Trace: sp.Trace, Detail: sp.Detail,
				Attempt: sp.Attempt, Status: sp.Status,
			},
		})
	}
	return out
}
