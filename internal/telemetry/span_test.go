package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// emitSpanWorkload emits the same logical span set through `workers`
// goroutines: each trace's spans stay on one goroutine (matching the
// real system, where one request's lifecycle is causally ordered) but
// traces interleave freely across goroutines.
func emitSpanWorkload(r *SpanRing, workers int) {
	const traces = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for tr := w; tr < traces; tr += workers {
				trace := fmt.Sprintf("t%04d", tr)
				tenant := fmt.Sprintf("tenant%d", tr%3)
				for _, stage := range []SpanStage{StageClientSend, StageAdmit, StageQueueWait, StageCommitMerge, StageStoreSave, StageAck} {
					r.Emit(Span{
						Trace: trace, Tenant: tenant, Stage: stage,
						Attempt: tr % 2, Status: 200, DurUS: int64(tr), // DurUS varies; export must not care
					})
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSpanExportDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		var runs [][]byte
		for run := 0; run < 2; run++ {
			r := NewSpanRing(0)
			emitSpanWorkload(r, workers)
			var buf bytes.Buffer
			if err := r.WriteJSONL(&buf); err != nil {
				t.Fatalf("workers=%d run=%d: WriteJSONL: %v", workers, run, err)
			}
			runs = append(runs, buf.Bytes())
		}
		if !bytes.Equal(runs[0], runs[1]) {
			t.Fatalf("workers=%d: two identical runs exported different bytes", workers)
		}
		if want == nil {
			want = runs[0]
		} else if !bytes.Equal(want, runs[0]) {
			t.Fatalf("workers=%d: export differs from single-worker export", workers)
		}
	}
	if !strings.Contains(string(want), `"stage":"queue-wait"`) {
		t.Fatalf("export missing stage field:\n%s", want[:200])
	}
	// The deterministic export must exclude live-only fields.
	if strings.Contains(string(want), `"seq"`) || strings.Contains(string(want), `"dur_us"`) {
		t.Fatalf("export leaked nondeterministic fields:\n%s", want[:200])
	}
}

func TestSpanChromeExportDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		r := NewSpanRing(0)
		emitSpanWorkload(r, workers)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, nil, r); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: chrome export differs from single-worker export", workers)
		}
	}
	if !bytes.Contains(want, []byte(`"span:tenant0"`)) {
		t.Fatalf("chrome export missing span process names")
	}
}

func TestSpanEmitZeroAllocNil(t *testing.T) {
	var r *SpanRing
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(Span{Trace: "t", Stage: StageAck})
	})
	if allocs != 0 {
		t.Fatalf("nil SpanRing Emit allocated %.1f/op", allocs)
	}
}

func TestSpanEmitZeroAllocInstalled(t *testing.T) {
	r := NewSpanRing(64)
	sp := Span{Trace: "t0001", Tenant: "mcf", Stage: StageQueueWait, Attempt: 1, Status: 200, DurUS: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(sp)
	})
	if allocs != 0 {
		t.Fatalf("installed SpanRing Emit allocated %.1f/op (ring must be preallocated)", allocs)
	}
}

func TestSpanRingBound(t *testing.T) {
	r := NewSpanRing(8)
	for i := 0; i < 20; i++ {
		r.Emit(Span{Trace: fmt.Sprintf("t%02d", i), Stage: StageAdmit})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("ring retained %d spans, want 8", got)
	}
	emitted, dropped := r.Stats()
	if emitted != 20 || dropped != 12 {
		t.Fatalf("stats = (%d emitted, %d dropped), want (20, 12)", emitted, dropped)
	}
	// The retained spans are the newest 12..19.
	snap := r.Snapshot()
	if snap[0].Trace != "t12" || snap[len(snap)-1].Trace != "t19" {
		t.Fatalf("ring did not drop oldest first: %q .. %q", snap[0].Trace, snap[len(snap)-1].Trace)
	}
}
