package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strings"
)

// HistScrape is one histogram family reconstructed from Prometheus
// text exposition, aggregated across its label sets — the client-side
// view a scraper (pppload's latency experiment, the skew report)
// computes quantiles from.
type HistScrape struct {
	Bounds []float64 // ascending upper bounds; last is +Inf
	Cum    []int64   // cumulative counts aligned with Bounds
	Count  int64
	Sum    float64
}

// Quantile estimates the p-quantile with the same bucket
// interpolation the server-side Histogram uses.
func (h *HistScrape) Quantile(p float64) float64 {
	if h == nil || len(h.Bounds) == 0 {
		return 0
	}
	finite := h.Bounds
	if math.IsInf(finite[len(finite)-1], 1) {
		finite = finite[:len(finite)-1]
	}
	return histQuantile(finite, h.Cum, h.Count, p)
}

// ScrapeHistogram extracts the named histogram family from exposition
// text, summing every label set's buckets into one distribution.
// Returns ok=false when the family has no bucket series.
func ScrapeHistogram(text, base string) (*HistScrape, bool) {
	byLe := map[float64]int64{}
	var sum float64
	var count int64
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			continue
		}
		switch s.name {
		case base + "_bucket":
			le, ok := labelValue(s.labels, "le")
			if !ok {
				continue
			}
			bound, err := parseLe(le)
			if err != nil {
				continue
			}
			byLe[bound] += int64(s.value)
		case base + "_sum":
			sum += s.value
		case base + "_count":
			count += int64(s.value)
		}
	}
	if len(byLe) == 0 {
		return nil, false
	}
	out := &HistScrape{Count: count, Sum: sum}
	for le := range byLe { //ppp:allow(mapiter) — sorted below
		out.Bounds = append(out.Bounds, le)
	}
	sort.Float64s(out.Bounds)
	out.Cum = make([]int64, len(out.Bounds))
	for i, le := range out.Bounds {
		out.Cum[i] = byLe[le]
	}
	return out, true
}

// FormatUS renders a microsecond quantity human-first: µs below 1ms,
// ms below 1s, seconds beyond.
func FormatUS(us float64) string {
	switch {
	case us < 1000:
		return fmt.Sprintf("%.0fµs", us)
	case us < 1e6:
		return fmt.Sprintf("%.2fms", us/1000)
	default:
		return fmt.Sprintf("%.3fs", us/1e6)
	}
}
