package telemetry

// VMMetrics bundles the interpreter hot-loop counters. Constructing it
// registers the metric catalog's ppp_vm_* family; Cells hands one
// worker's private view to a VM run. Registration is idempotent
// (Registry constructors dedupe by name), so several runs — or a
// RunReplicated fan-out — share the same counters.
type VMMetrics struct {
	Transitions *Counter
	Ops         *Counter
	TableIncs   *Counter
	ColdBumps   *Counter
	Paths       *Counter
	PathLen     *Histogram
}

// NewVMMetrics registers the VM hot-loop metrics in r. A nil registry
// yields a nil *VMMetrics, which is the nil-sink fast path end to end.
func NewVMMetrics(r *Registry) *VMMetrics {
	if r == nil {
		return nil
	}
	return &VMMetrics{
		Transitions: r.Counter("ppp_vm_transitions_total", "control-flow transitions executed"),
		Ops:         r.Counter("ppp_vm_instr_ops_total", "instrumentation operations executed"),
		TableIncs:   r.Counter("ppp_vm_table_incs_total", "path-counter table increments"),
		ColdBumps:   r.Counter("ppp_vm_cold_bumps_total", "poison-check diversions to the cold counter"),
		Paths:       r.Counter("ppp_vm_paths_total", "Ball-Larus paths completed"),
		PathLen:     r.Histogram("ppp_vm_path_len", "completed path length in DAG edges", []int64{1, 2, 4, 8, 16, 32, 64}),
	}
}

// VMCells is one worker's view of VMMetrics: plain padded cells the
// interpreter bumps with single-threaded stores. The zero VMCells
// (every field nil) is the no-op sink a run without telemetry uses —
// each bump then costs one predictable branch.
type VMCells struct {
	Transitions *Cell
	Ops         *Cell
	TableIncs   *Cell
	ColdBumps   *Cell
	Paths       *Cell
	PathLen     *HistCell
}

// Cells returns worker w's cells; a nil *VMMetrics returns the no-op
// zero VMCells.
func (m *VMMetrics) Cells(w int) VMCells {
	if m == nil {
		return VMCells{}
	}
	return VMCells{
		Transitions: m.Transitions.Cell(w),
		Ops:         m.Ops.Cell(w),
		TableIncs:   m.TableIncs.Cell(w),
		ColdBumps:   m.ColdBumps.Cell(w),
		Paths:       m.Paths.Cell(w),
		PathLen:     m.PathLen.Cell(w),
	}
}
