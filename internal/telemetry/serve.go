package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar.Publish panics on duplicate names and registers globally, so
// the registry-backed var is published once and reads whichever
// registry most recently built a handler.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Handler returns the exposition surface:
//
//	/metrics      Prometheus text format
//	/debug/vars   expvar JSON (includes a ppp_telemetry snapshot)
//	/debug/pprof  live profiling endpoints
//	/debug/ppp    live HTML dashboard (histograms, gauges, counters)
//	/trace.jsonl  decision trace + request spans as deterministic JSON lines
//	/trace.json   decision trace + request spans as Chrome trace_event JSON
//	/             a plain-text index of the above
//
// Everything is stdlib-only. Counter reads during a live run are
// best-effort (see Cell); exports after workers quiesce are exact.
func (r *Registry) Handler() http.Handler {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("ppp_telemetry", expvar.Func(func() interface{} {
			return expvarReg.Load().snapshotMap()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/ppp", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := RenderDashboard(w, r.DashboardPage("pathprof telemetry")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := r.Trace().WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := r.Spans().WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := WriteChromeTrace(w, r.Trace(), r.Spans()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pathprof telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n/debug/ppp\n/trace.jsonl\n/trace.json\n")
	})
	return mux
}

// snapshotMap renders counters and gauges for expvar. encoding/json
// sorts map keys, so /debug/vars output is deterministic for a given
// state.
func (r *Registry) snapshotMap() map[string]interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make(map[string]interface{}, len(r.counters)+len(r.gauges)+2)
	for name, c := range r.counters { //ppp:allow(mapiter) — json sorts keys
		out[name] = c.Value()
	}
	for name, g := range r.gauges { //ppp:allow(mapiter) — json sorts keys
		out[name] = g.Value()
	}
	trace := r.trace
	spans := r.spans
	r.mu.Unlock()
	if trace != nil {
		emitted, dropped := trace.Stats()
		out["ppp_trace_events_total"] = emitted
		out["ppp_trace_dropped_total"] = dropped
	}
	if spans != nil {
		emitted, dropped := spans.Stats()
		out["ppp_span_events_total"] = emitted
		out["ppp_span_dropped_total"] = dropped
	}
	return out
}
