package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// EventKind classifies one planner or runtime decision.
type EventKind int

const (
	// EvLCSkip: the low-coverage criterion skipped a routine (PPP 4.1).
	EvLCSkip EventKind = iota
	// EvSkip: a routine got no instrumentation for a terminal reason
	// (too-many-paths, no-hot-paths).
	EvSkip
	// EvColdLocal: an edge went cold under TPP's local criterion.
	EvColdLocal
	// EvColdGlobal: an edge went cold under PPP's global criterion
	// (initial marking or an SAC re-mark).
	EvColdGlobal
	// EvSACRound: one self-adjusting-criterion iteration raised the
	// global threshold and renumbered (PPP 4.3).
	EvSACRound
	// EvObviousLoop: an obvious high-trip-count loop was disconnected;
	// its body paths are edge-attributed (Section 3.2).
	EvObviousLoop
	// EvObviousAttr: an obvious path's constant counter update was
	// removed in favour of edge attribution (Section 4.4), or a whole
	// routine was found all-obvious.
	EvObviousAttr
	// EvPushCombine: instrumentation pushing merged two operations into
	// one (Sections 3.1, 4.4).
	EvPushCombine
	// EvSPNOrder: smart path numbering ordered the numbering by
	// measured edge frequency (PPP 4.5).
	EvSPNOrder
	// EvFPColdRange: free poisoning assigned a cold edge a register
	// value landing counts in the cold range [N, TableSize) (PPP 4.6).
	EvFPColdRange
	// EvHashTable: the routine's path count forced a hash table.
	EvHashTable
	// EvModeDemote: the degraded-mode ladder dropped a routine to TPP
	// or edge-only at plan time.
	EvModeDemote
	// EvSaturate: runtime counter saturation demoted a routine to
	// edge-only after the run.
	EvSaturate
	// EvQuarantine: guarded replication quarantined a shard; its
	// replicas' flow left the merge.
	EvQuarantine
	// EvFaultInject: the deterministic fault injector fired at a site.
	EvFaultInject
	// EvPlacement: the min-cost probe planner chose an edge-probe set;
	// Flow carries the expected dynamic probe hits under the guide
	// profile.
	EvPlacement
	// EvProof: the all-paths verifier proved (or refuted) a routine's
	// plan; Flow carries the violation count.
	EvProof
	// EvValidate: translation validation checked a compiled routine
	// against its plan IR; Flow carries the violation count.
	EvValidate
	// EvShed: the profile service refused work under overload — a
	// read/plan request shed ahead of ingest, or ingest itself pushed
	// back when the bounded queue filled.
	EvShed
	// EvStoreFault: a durable store save failed (or tore); the batch
	// it carried was not acknowledged.
	EvStoreFault
	// EvDrift: the profile-drift monitor saw a tenant's live aggregate
	// diverge from the guide profile its served plans were built on
	// (or return inside the envelope). Flow carries the live flow
	// running under the stale guide.
	EvDrift
)

var eventKindNames = [...]string{
	EvLCSkip:      "lc-skip",
	EvSkip:        "skip",
	EvColdLocal:   "cold-local",
	EvColdGlobal:  "cold-global",
	EvSACRound:    "sac-round",
	EvObviousLoop: "obvious-loop",
	EvObviousAttr: "obvious-attr",
	EvPushCombine: "push-combine",
	EvSPNOrder:    "spn-order",
	EvFPColdRange: "fp-cold-range",
	EvHashTable:   "hash-table",
	EvModeDemote:  "mode-demote",
	EvSaturate:    "saturate",
	EvQuarantine:  "quarantine",
	EvFaultInject: "fault-inject",
	EvPlacement:   "placement",
	EvProof:       "proof",
	EvValidate:    "validate",
	EvShed:        "shed",
	EvStoreFault:  "store-fault",
	EvDrift:       "drift",
}

func (k EventKind) String() string {
	if k >= 0 && int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Lossy reports whether the decision gives up measured flow: the
// event's Flow is path executions the profile will not attribute
// exactly. Combining, numbering, poisoning, and attribution events
// reshape instrumentation without losing flow.
func (k EventKind) Lossy() bool {
	switch k {
	case EvLCSkip, EvSkip, EvColdLocal, EvColdGlobal, EvModeDemote, EvSaturate, EvQuarantine:
		return true
	}
	return false
}

// Event is one recorded decision: which unit and routine it concerns,
// an optional edge witness, and the flow at stake (dynamic executions
// the decision affects — lost flow for Lossy kinds, reshaped flow
// otherwise).
type Event struct {
	Seq     int64 // global emission order within one trace
	Unit    string
	Routine string
	Kind    EventKind
	Edge    string // witness edge, e.g. "b2->b4", when one exists
	Flow    int64
	Detail  string
}

// DefaultTraceCap bounds the ring when NewTrace is given 0.
const DefaultTraceCap = 1 << 16

// Trace is a bounded ring of decision events. Emission is
// mutex-protected (decisions are planner/report-rate, never VM
// hot-loop-rate) and a nil *Trace is a valid no-op sink, so emission
// sites need no installed-sink check of their own.
type Trace struct {
	mu      sync.Mutex
	ringCap int
	events  []Event
	start   int // index of the oldest event once the ring wrapped
	seq     int64
	dropped int64
}

// NewTrace returns a trace holding at most capacity events
// (DefaultTraceCap when 0); the oldest events drop first.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{ringCap: capacity}
}

// Emit records an event, assigning its sequence number. Nil-safe.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.events) < t.ringCap {
		t.events = append(t.events, e)
	} else {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.ringCap
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Stats returns total emitted and dropped event counts.
func (t *Trace) Stats() (emitted, dropped int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq, t.dropped
}

// Snapshot copies the retained events in emission order.
func (t *Trace) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// sortedSnapshot orders events by (Unit, Routine, Seq). Concurrent
// emitters interleave global sequence numbers nondeterministically,
// but each (unit, routine) subsequence comes from one goroutine's
// deterministic decision order, so this sort — with Seq excluded from
// the export — makes two identical runs export byte-identical traces
// at any parallelism.
//
//ppp:deterministic
func (t *Trace) sortedSnapshot() []Event {
	evs := t.Snapshot()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Unit != evs[j].Unit {
			return evs[i].Unit < evs[j].Unit
		}
		if evs[i].Routine != evs[j].Routine {
			return evs[i].Routine < evs[j].Routine
		}
		return evs[i].Seq < evs[j].Seq
	})
	return evs
}

// jsonEvent is the deterministic JSONL shape: Seq is deliberately
// excluded (see sortedSnapshot).
type jsonEvent struct {
	Unit    string `json:"unit"`
	Routine string `json:"routine"`
	Kind    string `json:"kind"`
	Edge    string `json:"edge,omitempty"`
	Flow    int64  `json:"flow"`
	Detail  string `json:"detail,omitempty"`
}

// WriteJSONL exports the trace as JSON lines, deterministically: two
// identical runs produce byte-identical output. Nil-safe (writes
// nothing).
//
//ppp:deterministic
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.sortedSnapshot() {
		je := jsonEvent{
			Unit: e.Unit, Routine: e.Routine, Kind: e.Kind.String(),
			Edge: e.Edge, Flow: e.Flow, Detail: e.Detail,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace_event record. Timestamps are sorted
// ranks, not wall clock: the viewer shows decision order, and the
// export stays deterministic.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   int64      `json:"ts"`
	Dur  int64      `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name    string `json:"name,omitempty"`
	Routine string `json:"routine,omitempty"`
	Edge    string `json:"edge,omitempty"`
	Flow    int64  `json:"flow,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Trace   string `json:"trace,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Status  int    `json:"status,omitempty"`
}

// chromeTraceEvents renders decision events as Chrome trace_event
// records: units map to processes, routines to threads, timestamps to
// deterministic sorted ranks. It returns the records plus the number
// of process IDs and timestamps consumed, so span records can follow
// without colliding.
//
//ppp:deterministic
func (t *Trace) chromeTraceEvents() (out []chromeEvent, pidsUsed, tsUsed int) {
	if t == nil {
		return nil, 0, 0
	}
	evs := t.sortedSnapshot()
	pids := map[string]int{}
	tids := map[string]int{}
	for i, e := range evs {
		pid, ok := pids[e.Unit]
		if !ok {
			pid = len(pids) + 1
			pids[e.Unit] = pid
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: chromeArgs{Name: e.Unit},
			})
		}
		tkey := e.Unit + "\x00" + e.Routine
		tid, ok := tids[tkey]
		if !ok {
			tid = len(tids) + 1
			tids[tkey] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: chromeArgs{Name: e.Routine},
			})
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Cat: "ppp", Ph: "X",
			Ts: int64(i), Dur: 1, Pid: pid, Tid: tid,
			Args: chromeArgs{Routine: e.Routine, Edge: e.Edge, Flow: e.Flow, Detail: e.Detail},
		})
	}
	return out, len(pids), len(evs)
}

// WriteChrome exports the trace as Chrome trace_event JSON (load via
// chrome://tracing or Perfetto). Units map to processes and routines
// to threads; event timestamps are the deterministic sorted ranks.
//
//ppp:deterministic
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, t, nil)
}

// WriteChromeTrace exports decision events and request spans into one
// Chrome trace_event document: decision units first, span processes
// after them, all timestamps deterministic ranks. Either input may be
// nil.
//
//ppp:deterministic
func WriteChromeTrace(w io.Writer, t *Trace, spans *SpanRing) error {
	var out struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	evs, pidsUsed, tsUsed := t.chromeTraceEvents()
	out.TraceEvents = evs
	out.TraceEvents = append(out.TraceEvents, spans.chromeSpanEvents(pidsUsed, tsUsed)...)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&out); err != nil {
		return err
	}
	return bw.Flush()
}

// TopLoss returns the unit's flow-losing decision with the most flow
// at stake (earliest emission wins ties), and whether one exists. This
// is the "why" a report shows for a unit whose profile is not exact.
func (t *Trace) TopLoss(unit string) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var best Event
	found := false
	for i := range t.events {
		e := &t.events[i]
		if e.Unit != unit || !e.Kind.Lossy() {
			continue
		}
		if !found || e.Flow > best.Flow || (e.Flow == best.Flow && e.Seq < best.Seq) {
			best = *e
			found = true
		}
	}
	return best, found
}
