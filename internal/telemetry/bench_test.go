package telemetry

import "testing"

// The benchmarks document the two halves of the sink contract: nil and
// installed receivers both run alloc-free, and the nil path is a
// single predictable branch.

func BenchmarkCellIncNil(b *testing.B) {
	var c *Cell
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCellInc(b *testing.B) {
	r := NewRegistry(1)
	c := r.Counter("bench_total", "").Cell(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistObserveNil(b *testing.B) {
	var h *HistCell
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 63))
	}
}

func BenchmarkHistObserve(b *testing.B) {
	r := NewRegistry(1)
	h := r.Histogram("bench_len", "", []int64{1, 2, 4, 8, 16, 32, 64}).Cell(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 63))
	}
}

func BenchmarkTraceEmitNil(b *testing.B) {
	var tr *Trace
	ev := Event{Unit: "u", Routine: "f", Kind: EvSkip}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
