package telemetry

import (
	"fmt"
	"html/template"
	"io"
	"strconv"
)

// DashSection is one table on the live dashboard.
type DashSection struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// DashPage is the whole dashboard: a title plus sections in display
// order. Builders assemble it from registry snapshots; RenderDashboard
// turns it into self-contained HTML with no external assets.
type DashPage struct {
	Title    string
	Sections []DashSection
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<meta http-equiv="refresh" content="5">
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5em; background: #14161a; color: #d6d8dc; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-bottom: .3em; color: #8ab4f8; }
p.note { margin-top: 0; color: #8a8f98; font-size: .85em; }
table { border-collapse: collapse; margin-bottom: 1.4em; }
th, td { border: 1px solid #333842; padding: .25em .7em; text-align: left; font-size: .9em; }
th { background: #1d2026; color: #aab2bf; }
tr:nth-child(even) td { background: #181b20; }
td.drifted { color: #f28b82; font-weight: bold; }
</style></head><body>
<h1>{{.Title}}</h1>
{{range .Sections}}<h2>{{.Title}}</h2>
{{if .Note}}<p class="note">{{.Note}}</p>{{end}}
<table><tr>{{range .Cols}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td{{if eq . "DRIFTED"}} class="drifted"{{end}}>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{end}}</body></html>
`))

// RenderDashboard writes the page as HTML. Values are escaped by
// html/template; the page auto-refreshes every 5 seconds.
func RenderDashboard(w io.Writer, p *DashPage) error {
	return dashTmpl.Execute(w, p)
}

// DashboardPage builds the generic registry view: histogram summaries
// with quantiles, counters, gauges, and recent trace events. Service
// code prepends its own sections (queue, drift, tenants) before
// rendering.
func (r *Registry) DashboardPage(title string) *DashPage {
	p := &DashPage{Title: title}
	if r == nil {
		return p
	}
	if hs := r.HistStats(); len(hs) > 0 {
		sec := DashSection{
			Title: "Latency and size distributions",
			Note:  "quantiles estimated from cumulative buckets (Prometheus interpolation)",
			Cols:  []string{"histogram", "count", "p50", "p90", "p99"},
		}
		for _, h := range hs {
			sec.Rows = append(sec.Rows, []string{
				h.Name, strconv.FormatInt(h.Count, 10),
				FormatUS(h.P50), FormatUS(h.P90), FormatUS(h.P99),
			})
		}
		p.Sections = append(p.Sections, sec)
	}
	if gs := r.GaugeStats(); len(gs) > 0 {
		sec := DashSection{Title: "Gauges", Cols: []string{"gauge", "value"}}
		for _, g := range gs {
			sec.Rows = append(sec.Rows, []string{
				g.Name, strconv.FormatFloat(g.Value, 'g', 6, 64),
			})
		}
		p.Sections = append(p.Sections, sec)
	}
	if cs := r.CounterStats(); len(cs) > 0 {
		sec := DashSection{Title: "Counters", Cols: []string{"counter", "value"}}
		for _, c := range cs {
			sec.Rows = append(sec.Rows, []string{c.Name, strconv.FormatInt(c.Value, 10)})
		}
		p.Sections = append(p.Sections, sec)
	}
	if evs := recentEvents(r.Trace(), 20); len(evs) > 0 {
		sec := DashSection{
			Title: "Recent decision-trace events",
			Cols:  []string{"kind", "unit", "routine", "detail"},
		}
		for _, e := range evs {
			sec.Rows = append(sec.Rows, []string{
				e.Kind.String(), e.Unit, e.Routine,
				fmt.Sprintf("%s (flow %d)", e.Detail, e.Flow),
			})
		}
		p.Sections = append(p.Sections, sec)
	}
	if emitted, dropped := r.Spans().Stats(); emitted > 0 {
		sec := DashSection{
			Title: "Request spans",
			Cols:  []string{"emitted", "dropped", "retained"},
			Rows: [][]string{{
				strconv.FormatInt(emitted, 10),
				strconv.FormatInt(dropped, 10),
				strconv.Itoa(r.Spans().Len()),
			}},
		}
		p.Sections = append(p.Sections, sec)
	}
	return p
}

// recentEvents returns up to n of the newest trace events, newest
// first.
func recentEvents(t *Trace, n int) []Event {
	evs := t.Snapshot()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}
