// Package telemetry is the observability layer of the profiling
// runtime: a zero-allocation metrics registry, a bounded decision
// trace recording why the planner and the degraded-mode ladder gave up
// flow, and a stdlib-only exposition surface (Prometheus text,
// expvar, pprof, trace export).
//
// The design mirrors internal/profile's sharded collectors: counters
// and histograms hand out one cache-line-padded cell per worker, each
// written with plain stores by exactly one goroutine (no atomics, no
// locks on the hot path), and reads fold the cells in index order so
// the folded value is deterministic for a given set of cell contents.
//
// Every emission point in the repository tolerates an uninstalled
// sink: a nil *Cell, *HistCell, *Trace, *Registry, or *VMMetrics is a
// valid no-op receiver, so instrumented code pays one predictable
// branch — and zero allocations — when telemetry is off. The
// telemetry benchmarks assert 0 allocs/op on both the nil and the
// installed paths.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Cell is one worker's private slot of a Counter: a plain int64 padded
// to a cache line so adjacent workers' cells never share one. Exactly
// one goroutine may write a given cell at a time; reads are exact once
// the writers have quiesced (RunReplicated folds after its WaitGroup),
// and best-effort while they run (a live /metrics scrape).
type Cell struct {
	n int64
	_ [56]byte // pad to 64 bytes so adjacent cells don't false-share
}

// Inc adds one to the cell. A nil cell (no sink installed) is a no-op
// costing one branch.
//
//ppp:hotpath
func (c *Cell) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add adds v to the cell; nil-safe like Inc.
//
//ppp:hotpath
func (c *Cell) Add(v int64) {
	if c == nil {
		return
	}
	c.n += v
}

// Counter is a monotonically increasing metric, sharded into
// per-worker cells. Hand Cell(w) to worker w; Value folds the cells
// in index order.
type Counter struct {
	name, help string
	cells      []Cell
}

// Cell returns worker w's cell, clamping w into range; a nil counter
// returns a nil cell, which is a valid no-op sink.
func (c *Counter) Cell(w int) *Cell {
	if c == nil {
		return nil
	}
	if w < 0 {
		w = 0
	}
	if w >= len(c.cells) {
		w = len(c.cells) - 1
	}
	return &c.cells[w]
}

// Value folds the cells in index order.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n
	}
	return sum
}

// Gauge is a settable instantaneous value. Set/Value go through atomic
// bits because gauges are written by report code that may overlap a
// live scrape; gauges never sit on the VM hot path.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set replaces the gauge's value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Histogram is a cumulative-bucket distribution over int64
// observations, sharded into per-worker cells like Counter.
type Histogram struct {
	name, help string
	bounds     []int64 // ascending upper bounds; +Inf bucket is implicit
	cells      []HistCell
}

// HistCell is one worker's private histogram state. The bounds slice
// is shared (read-only) across cells; counts has len(bounds)+1 slots,
// the last being the +Inf bucket.
type HistCell struct {
	bounds []int64
	counts []int64
	sum    int64
	n      int64
	_      [64]byte // keep adjacent cell headers off one cache line
}

// Observe records v into its bucket with a linear scan over the (few)
// bounds. Nil-safe; zero allocations.
//
//ppp:hotpath
func (h *HistCell) Observe(v int64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Cell returns worker w's cell; nil-safe like Counter.Cell.
func (h *Histogram) Cell(w int) *HistCell {
	if h == nil {
		return nil
	}
	if w < 0 {
		w = 0
	}
	if w >= len(h.cells) {
		w = len(h.cells) - 1
	}
	return &h.cells[w]
}

// fold sums the cells in index order into cumulative bucket counts,
// total count, and sum.
func (h *Histogram) fold() (cum []int64, n, sum int64) {
	cum = make([]int64, len(h.bounds)+1)
	for i := range h.cells {
		c := &h.cells[i]
		for j, v := range c.counts {
			cum[j] += v
		}
		n += c.n
		sum += c.sum
	}
	for j := 1; j < len(cum); j++ {
		cum[j] += cum[j-1]
	}
	return cum, n, sum
}

// Count folds the total observation count across cells.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.fold()
	return n
}

// Quantile estimates the p-quantile (0 < p <= 1) from the folded
// buckets with Prometheus-style linear interpolation inside the
// target bucket; observations in the +Inf bucket report the highest
// finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	cum, n, _ := h.fold()
	bounds := make([]float64, len(h.bounds))
	for i, b := range h.bounds {
		bounds[i] = float64(b)
	}
	return histQuantile(bounds, cum, n, p)
}

// histQuantile is the shared bucket-quantile estimator: bounds are the
// ascending finite upper bounds, cum the cumulative counts with one
// extra trailing +Inf entry, n the total count.
func histQuantile(bounds []float64, cum []int64, n int64, p float64) float64 {
	if n <= 0 || len(cum) == 0 {
		return 0
	}
	if p <= 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(n)
	for i, c := range cum {
		if float64(c) < target {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: report the highest finite bound, the
			// standard histogram_quantile behavior.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		var prev int64
		if i > 0 {
			lower = bounds[i-1]
			prev = cum[i-1]
		}
		inBucket := c - prev
		if inBucket <= 0 {
			return bounds[i]
		}
		frac := (target - float64(prev)) / float64(inBucket)
		return lower + frac*(bounds[i]-lower)
	}
	return bounds[len(bounds)-1]
}

// HistStat is one histogram's folded summary for dashboards and
// reports.
type HistStat struct {
	Name          string
	Count, Sum    int64
	P50, P90, P99 float64
}

// NamedInt is one counter's folded value.
type NamedInt struct {
	Name  string
	Value int64
}

// NamedFloat is one gauge's value.
type NamedFloat struct {
	Name  string
	Value float64
}

// Registry owns the process's metrics and its decision trace. All
// constructors are idempotent: asking for an existing name returns the
// existing metric, so independent subsystems can share one registry
// without coordination. A nil registry is a valid no-op sink
// everywhere.
type Registry struct {
	workers int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
	spans    *SpanRing
}

// NewRegistry returns a registry whose counters and histograms carry
// `workers` per-worker cells (minimum 1).
func NewRegistry(workers int) *Registry {
	if workers < 1 {
		workers = 1
	}
	return &Registry{
		workers:  workers,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		trace:    NewTrace(0),
		spans:    NewSpanRing(0),
	}
}

// Workers returns the per-metric cell count.
func (r *Registry) Workers() int {
	if r == nil {
		return 0
	}
	return r.workers
}

// Trace returns the registry's decision trace; nil for a nil registry
// (and a nil *Trace is itself a valid no-op sink).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Spans returns the registry's request-span ring; nil for a nil
// registry (and a nil *SpanRing is itself a valid no-op sink).
func (r *Registry) Spans() *SpanRing {
	if r == nil {
		return nil
	}
	return r.spans
}

// CounterStats returns every counter's folded value, sorted by name.
func (r *Registry) CounterStats() []NamedInt {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]NamedInt, 0, len(r.counters))
	for name, c := range r.counters { //ppp:allow(mapiter) — sorted below
		out = append(out, NamedInt{Name: name, Value: c.Value()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GaugeStats returns every gauge's value, sorted by name.
func (r *Registry) GaugeStats() []NamedFloat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]NamedFloat, 0, len(r.gauges))
	for name, g := range r.gauges { //ppp:allow(mapiter) — sorted below
		out = append(out, NamedFloat{Name: name, Value: g.Value()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistStats returns every histogram's folded summary (count, sum, and
// estimated p50/p90/p99), sorted by name.
func (r *Registry) HistStats() []HistStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists { //ppp:allow(mapiter) — sorted below
		hists = append(hists, h)
	}
	r.mu.Unlock()
	out := make([]HistStat, 0, len(hists))
	for _, h := range hists {
		_, n, sum := h.fold()
		out = append(out, HistStat{
			Name: h.name, Count: n, Sum: sum,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns the named counter, creating it on first use. The
// name may carry Prometheus labels inline: `ppp_x_total{workload="mcf"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c := &Counter{name: name, help: help, cells: make([]Cell, r.workers)}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (the first bounds win).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h := &Histogram{name: name, help: help, bounds: append([]int64(nil), bounds...)}
	h.cells = make([]HistCell, r.workers)
	for i := range h.cells {
		h.cells[i].bounds = h.bounds
		h.cells[i].counts = make([]int64, len(h.bounds)+1)
	}
	r.hists[name] = h
	return h
}

// splitName separates an inline-labeled metric name into its base name
// and label body: `x{a="b"}` -> ("x", `a="b"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
		return base, labels
	}
	return name, ""
}

// seriesName renders base plus merged labels (existing labels first).
func seriesName(base, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return base
	}
	return base + "{" + all + "}"
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, families sorted by base name and series sorted
// within each family, so two writes over the same state are
// byte-identical. The decision trace contributes
// ppp_trace_events_total and ppp_trace_dropped_total.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters { //ppp:allow(mapiter) — sorted below
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges { //ppp:allow(mapiter) — sorted below
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists { //ppp:allow(mapiter) — sorted below
		hists = append(hists, h)
	}
	trace := r.trace
	spans := r.spans
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	type family struct {
		base, help, typ string
		lines           []string
	}
	fams := map[string]*family{}
	fam := func(base, help, typ string) *family {
		f := fams[base]
		if f == nil {
			f = &family{base: base, help: help, typ: typ}
			fams[base] = f
		}
		return f
	}
	for _, c := range counters {
		base, labels := splitName(c.name)
		f := fam(base, c.help, "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s %d", seriesName(base, labels, ""), c.Value()))
	}
	for _, g := range gauges {
		base, labels := splitName(g.name)
		f := fam(base, g.help, "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s %s", seriesName(base, labels, ""),
			strconv.FormatFloat(g.Value(), 'g', -1, 64)))
	}
	for _, h := range hists {
		base, labels := splitName(h.name)
		f := fam(base, h.help, "histogram")
		cum, n, sum := h.fold()
		for i, b := range h.bounds {
			f.lines = append(f.lines, fmt.Sprintf("%s %d",
				seriesName(base+"_bucket", labels, fmt.Sprintf("le=%q", strconv.FormatInt(b, 10))), cum[i]))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s %d", seriesName(base+"_bucket", labels, `le="+Inf"`), cum[len(cum)-1]))
		f.lines = append(f.lines, fmt.Sprintf("%s %d", seriesName(base+"_sum", labels, ""), sum))
		f.lines = append(f.lines, fmt.Sprintf("%s %d", seriesName(base+"_count", labels, ""), n))
	}
	if trace != nil {
		emitted, dropped := trace.Stats()
		f := fam("ppp_trace_events_total", "planner/runtime decision-trace events emitted", "counter")
		f.lines = append(f.lines, fmt.Sprintf("ppp_trace_events_total %d", emitted))
		f = fam("ppp_trace_dropped_total", "decision-trace events dropped by the bounded ring", "counter")
		f.lines = append(f.lines, fmt.Sprintf("ppp_trace_dropped_total %d", dropped))
	}
	if spans != nil {
		emitted, dropped := spans.Stats()
		f := fam("ppp_span_events_total", "request-scoped lifecycle spans emitted", "counter")
		f.lines = append(f.lines, fmt.Sprintf("ppp_span_events_total %d", emitted))
		f = fam("ppp_span_dropped_total", "request spans dropped by the bounded ring", "counter")
		f.lines = append(f.lines, fmt.Sprintf("ppp_span_dropped_total %d", dropped))
	}

	bases := make([]string, 0, len(fams))
	for b := range fams { //ppp:allow(mapiter) — sorted below
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		f := fams[b]
		sort.Strings(f.lines)
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.base, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.base, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(bw, line)
		}
	}
	return bw.Flush()
}

// ValidatePrometheus is a tiny stdlib checker for the Prometheus text
// exposition format: metric-name syntax, loose label syntax, a
// parseable float value on every sample line, and — for every family
// declared `# TYPE <name> histogram` — well-formed histogram
// exposition: strictly increasing `le` bucket bounds, monotone
// cumulative bucket counts, a terminal `+Inf` bucket, and `_sum` and
// `_count` series whose totals agree with the buckets. It exists so
// CI can assert /metrics output stays well-formed without a
// Prometheus dependency.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	var samples []promSample
	types := map[string]string{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateCommentLine(line); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if fields := strings.Fields(line); len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.line = lineNo
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return validateHistograms(types, samples)
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels string // raw label body, no braces
	value  float64
	line   int
}

// histGroup accumulates one histogram series group (one label set
// minus `le`) for consistency checking.
type histGroup struct {
	base     string
	buckets  []histBucket
	sum      float64
	count    float64
	hasSum   bool
	hasCount bool
	firstAt  int
}

type histBucket struct {
	le    float64
	value float64
	line  int
}

// validateHistograms cross-checks every family declared as a
// histogram: each label group must expose strictly increasing `le`
// bounds ending in `+Inf`, cumulative counts that never decrease, a
// `_count` equal to the `+Inf` bucket, and a `_sum` (zero when the
// count is zero).
func validateHistograms(types map[string]string, samples []promSample) error {
	groups := map[string]*histGroup{}
	group := func(base, labels string, at int) (*histGroup, error) {
		pairs, err := parseLabels(labels)
		if err != nil {
			return nil, err
		}
		rest := make([]string, 0, len(pairs))
		for _, p := range pairs {
			if p.key != "le" {
				rest = append(rest, p.key+"="+p.val)
			}
		}
		sort.Strings(rest)
		key := base + "\xff" + strings.Join(rest, ",")
		g := groups[key]
		if g == nil {
			g = &histGroup{base: base, firstAt: at}
			groups[key] = g
		}
		return g, nil
	}
	for _, s := range samples {
		base, suffix := histSeriesBase(s.name)
		if suffix == "" || types[base] != "histogram" {
			continue
		}
		g, err := group(base, s.labels, s.line)
		if err != nil {
			return fmt.Errorf("line %d: %w", s.line, err)
		}
		switch suffix {
		case "bucket":
			le, ok := labelValue(s.labels, "le")
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %s has no le label", s.line, s.name)
			}
			bound, err := parseLe(le)
			if err != nil {
				return fmt.Errorf("line %d: %w", s.line, err)
			}
			g.buckets = append(g.buckets, histBucket{le: bound, value: s.value, line: s.line})
		case "sum":
			g.sum, g.hasSum = s.value, true
		case "count":
			g.count, g.hasCount = s.value, true
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups { //ppp:allow(mapiter) — sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := groups[k].check(); err != nil {
			return err
		}
	}
	return nil
}

func (g *histGroup) check() error {
	if len(g.buckets) == 0 {
		return fmt.Errorf("histogram %s (near line %d): no bucket series", g.base, g.firstAt)
	}
	sort.SliceStable(g.buckets, func(i, j int) bool { return g.buckets[i].le < g.buckets[j].le })
	for i := 1; i < len(g.buckets); i++ {
		prev, cur := g.buckets[i-1], g.buckets[i]
		if cur.le == prev.le {
			return fmt.Errorf("histogram %s: duplicate le=%g bucket (lines %d, %d)", g.base, cur.le, prev.line, cur.line)
		}
		if cur.value < prev.value {
			return fmt.Errorf("histogram %s: cumulative bucket counts decrease at le=%g (line %d): %g -> %g",
				g.base, cur.le, cur.line, prev.value, cur.value)
		}
	}
	last := g.buckets[len(g.buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %s (near line %d): no terminal le=\"+Inf\" bucket", g.base, last.line)
	}
	if !g.hasCount {
		return fmt.Errorf("histogram %s (near line %d): missing _count series", g.base, g.firstAt)
	}
	if !g.hasSum {
		return fmt.Errorf("histogram %s (near line %d): missing _sum series", g.base, g.firstAt)
	}
	if g.count != last.value {
		return fmt.Errorf("histogram %s: _count %g disagrees with +Inf bucket %g", g.base, g.count, last.value)
	}
	if g.count == 0 && g.sum != 0 {
		return fmt.Errorf("histogram %s: zero observations but _sum %g", g.base, g.sum)
	}
	return nil
}

// histSeriesBase splits a histogram series name into its family base
// and suffix ("bucket", "sum", or "count"); suffix is empty for
// non-histogram-shaped names.
func histSeriesBase(name string) (base, suffix string) {
	for _, s := range [...]string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) && len(name) > len(s) {
			return name[:len(name)-len(s)], s[1:]
		}
	}
	return name, ""
}

// parseLe parses a bucket bound, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le bound %q", s)
	}
	return v, nil
}

func validateCommentLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line: %s", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line: %s", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSampleLine(line string) (promSample, error) {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd < 0 {
		return promSample{}, fmt.Errorf("sample with no value: %s", line)
	}
	s := promSample{name: rest[:nameEnd]}
	if !validMetricName(s.name) {
		return promSample{}, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return promSample{}, fmt.Errorf("unterminated label set: %s", line)
		}
		s.labels = rest[1:close]
		if _, err := parseLabels(s.labels); err != nil {
			return promSample{}, fmt.Errorf("%w in %s", err, line)
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return promSample{}, fmt.Errorf("expected value [timestamp]: %s", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return promSample{}, fmt.Errorf("unparseable value %q", fields[0])
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return promSample{}, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return s, nil
}

// labelPair is one parsed label, unquoted.
type labelPair struct {
	key, val string
}

// parseLabels parses `k="v",k2="v2"` label bodies. Escaped quotes
// inside values are tolerated by scanning for the closing quote with
// a backslash check.
func parseLabels(body string) ([]labelPair, error) {
	if strings.TrimSpace(body) == "" {
		return nil, nil
	}
	var out []labelPair
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(rest[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		rest = rest[1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		out = append(out, labelPair{key: key, val: rest[:end]})
		rest = rest[end+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("expected ',' between labels")
		}
		rest = rest[1:]
	}
	return out, nil
}

// labelValue extracts one label's (unescaped) value from a raw label
// body; ok is false when absent or the body is malformed.
func labelValue(body, key string) (string, bool) {
	pairs, err := parseLabels(body)
	if err != nil {
		return "", false
	}
	for _, p := range pairs {
		if p.key == key {
			return p.val, true
		}
	}
	return "", false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
