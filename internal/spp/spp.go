// Package spp contrasts selective path profiling's numbering policy
// with PPP's smart path numbering (the paper's Section 2): SPP numbers
// the paths of interest — the hot ones — high, placing the
// path-register increments on them, while PPP numbers them low so the
// hottest edges carry no increments at all.
//
// CompareOrderings quantifies the difference on a profiled routine:
// the expected dynamic cost of path-register updates under each
// numbering, using Ball's event counting with profile weights in every
// case so only the numbering order differs.
package spp

import (
	"pathprof/internal/cfg"
	"pathprof/internal/pathnum"
)

// OrderingCost is the expected dynamic instrumentation traffic of one
// numbering order on one routine.
type OrderingCost struct {
	Order pathnum.Order
	// DynamicIncrements is the number of r += v operations the profile
	// predicts per run (sum of nonzero-increment chord frequencies).
	DynamicIncrements int64
	// StaticIncrements is the number of instrumented edges.
	StaticIncrements int
}

// Comparison holds the costs for Ball-Larus, PPP (hot edges first),
// and SPP (cold edges first) numbering on one routine.
type Comparison struct {
	BallLarus OrderingCost
	PPP       OrderingCost
	SPP       OrderingCost
}

// CompareOrderings numbers the routine three ways and returns the
// expected increment traffic of each. The graph must carry an edge
// profile. Returns an error only if the routine's paths overflow.
func CompareOrderings(g *cfg.Graph) (*Comparison, error) {
	d, err := cfg.BuildDAG(g)
	if err != nil {
		return nil, err
	}
	d.RefreshFreqs()
	cost := func(order pathnum.Order) (OrderingCost, error) {
		n, err := pathnum.Number(d, nil, order)
		if err != nil {
			return OrderingCost{}, err
		}
		inc, chord := pathnum.EventCount(n, pathnum.ProfileWeights(d))
		c := OrderingCost{Order: order}
		for _, e := range d.Edges {
			if chord[e.ID] && inc[e.ID] != 0 {
				c.StaticIncrements++
				c.DynamicIncrements += e.Freq
			}
		}
		return c, nil
	}
	var cmp Comparison
	if cmp.BallLarus, err = cost(pathnum.OrderBallLarus); err != nil {
		return nil, err
	}
	if cmp.PPP, err = cost(pathnum.OrderByFreq); err != nil {
		return nil, err
	}
	if cmp.SPP, err = cost(pathnum.OrderByFreqAsc); err != nil {
		return nil, err
	}
	return &cmp, nil
}
