package spp_test

import (
	"math/rand"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/spp"
)

func TestPPPBeatsSPPOnSkewedProfiles(t *testing.T) {
	// With strongly skewed branch probabilities, placing increments on
	// the cold side (PPP) must generate no more dynamic traffic than
	// placing them on the hot side (SPP).
	g := cfg.New("skewed")
	entry := g.AddBlock("entry")
	prev := entry
	for k := 0; k < 6; k++ {
		a := g.AddBlock("")
		hotArm := g.AddBlock("")
		coldArm := g.AddBlock("")
		j := g.AddBlock("")
		cfgtest.Connect(g, prev, a).Freq = 1000
		cfgtest.Connect(g, a, hotArm).Freq = 950
		cfgtest.Connect(g, a, coldArm).Freq = 50
		cfgtest.Connect(g, hotArm, j).Freq = 950
		cfgtest.Connect(g, coldArm, j).Freq = 50
		prev = j
	}
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, prev, exit).Freq = 1000
	g.Entry, g.Exit = entry, exit
	g.Calls = 1000
	// Fix up the inter-diamond edges' frequencies.
	for _, e := range g.Edges {
		if e.Freq == 0 {
			e.Freq = 1000
		}
	}

	cmp, err := spp.CompareOrderings(g)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PPP.DynamicIncrements > cmp.SPP.DynamicIncrements {
		t.Errorf("PPP increments %d exceed SPP %d", cmp.PPP.DynamicIncrements, cmp.SPP.DynamicIncrements)
	}
	// The skew is 19:1, so the gap should be substantial.
	if cmp.SPP.DynamicIncrements < 2*cmp.PPP.DynamicIncrements {
		t.Errorf("expected SPP (%d) to cost much more than PPP (%d) at 95/5 skew",
			cmp.SPP.DynamicIncrements, cmp.PPP.DynamicIncrements)
	}
}

func TestCompareOrderingsAggregate(t *testing.T) {
	// Hot-first numbering is not universally better per routine — the
	// paper itself observes that removing SPN helps four benchmarks
	// and hurts four (Section 8.3) — but in aggregate over many random
	// profiled routines PPP's ordering must generate less increment
	// traffic than SPP's.
	rng := rand.New(rand.NewSource(99))
	var ppp, sppSum, bl int64
	for i := 0; i < 200; i++ {
		g := cfgtest.Random(rng, 4+rng.Intn(12))
		cfgtest.Profile(g, rng, 100, 300)
		cmp, err := spp.CompareOrderings(g)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		ppp += cmp.PPP.DynamicIncrements
		sppSum += cmp.SPP.DynamicIncrements
		bl += cmp.BallLarus.DynamicIncrements
	}
	t.Logf("aggregate increments: Ball-Larus=%d PPP=%d SPP=%d", bl, ppp, sppSum)
	if ppp >= sppSum {
		t.Errorf("PPP aggregate %d not below SPP %d", ppp, sppSum)
	}
}
