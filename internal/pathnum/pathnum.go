// Package pathnum implements Ball-Larus path numbering and Ball's
// event-counting edge-value reassignment, plus the smart path numbering
// variant of Bond & McKinley's PPP (CGO 2005, Figure 6), which orders a
// block's outgoing edges by measured execution frequency so the hottest
// edge receives increment zero.
//
// A Numbering assigns a value Val(e) to each DAG edge such that the sum
// of values along every entry->exit DAG path is a unique number in
// [0, N-1], where N is the number of such paths. Cold edges may be
// excluded from the numbering; paths through them receive no number.
package pathnum

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pathprof/internal/cfg"
)

// Order selects how a block's outgoing edges are visited during
// numbering, which determines the value assignment.
type Order int

const (
	// OrderBallLarus visits edges in increasing order of the number of
	// paths in the target's subgraph (the original Figure 2 algorithm),
	// which minimises the range of edge increments.
	OrderBallLarus Order = iota
	// OrderByFreq visits edges in decreasing order of measured execution
	// frequency (PPP's smart path numbering, Figure 6), so the hottest
	// outgoing edge is assigned value zero.
	OrderByFreq
	// OrderByFreqAsc visits edges in increasing frequency order, the
	// dual of OrderByFreq. Selective path profiling (Apiwattanapong &
	// Harrold) numbers paths of interest high this way; the paper's
	// Section 2 notes PPP does the opposite to keep instrumentation off
	// the hot paths. Provided for the SPP comparison.
	OrderByFreqAsc
)

// ErrTooManyPaths is returned when the number of DAG paths does not fit
// the profiler's 64-bit path numbers. The paper's profilers truncate
// such routines; ours refuses to instrument them.
var ErrTooManyPaths = errors.New("pathnum: path count overflows 64-bit path numbers")

// maxPaths bounds N so that the free-poisoning range [N, 3N-1] still
// fits in an int64.
const maxPaths = math.MaxInt64 / 4

// Numbering is a path numbering of a DAG: values on edges whose path
// sums enumerate [0, N-1].
type Numbering struct {
	D        *cfg.DAG
	Excluded []bool  // by DAG edge ID; excluded (cold) edges get no value
	Val      []int64 // by DAG edge ID
	// FromExit[b] is the number of b->exit paths over non-excluded
	// edges; FromEntry[b] the number of entry->b paths. N = FromExit of
	// the entry block.
	FromExit  []int64
	FromEntry []int64
	N         int64
}

// Number computes a path numbering of d, skipping excluded edges
// (excluded may be nil). It returns ErrTooManyPaths if the path count
// exceeds the 64-bit budget.
func Number(d *cfg.DAG, excluded []bool, order Order) (*Numbering, error) {
	g := d.G
	n := &Numbering{
		D:         d,
		Excluded:  make([]bool, len(d.Edges)),
		Val:       make([]int64, len(d.Edges)),
		FromExit:  make([]int64, len(g.Blocks)),
		FromEntry: make([]int64, len(g.Blocks)),
	}
	if excluded != nil {
		copy(n.Excluded, excluded)
	}

	// Figure 2 / Figure 6: reverse topological order.
	n.FromExit[g.Exit.ID] = 1
	for i := len(d.Topo) - 1; i >= 0; i-- {
		v := d.Topo[i]
		if v == g.Exit {
			continue
		}
		edges := make([]*cfg.DAGEdge, 0, len(d.Out[v.ID]))
		for _, e := range d.Out[v.ID] {
			if !n.Excluded[e.ID] {
				edges = append(edges, e)
			}
		}
		switch order {
		case OrderByFreq:
			sort.SliceStable(edges, func(i, j int) bool { return edges[i].Freq > edges[j].Freq })
		case OrderByFreqAsc:
			sort.SliceStable(edges, func(i, j int) bool { return edges[i].Freq < edges[j].Freq })
		default:
			sort.SliceStable(edges, func(i, j int) bool {
				return n.FromExit[edges[i].Dst.ID] < n.FromExit[edges[j].Dst.ID]
			})
		}
		var sum int64
		for _, e := range edges {
			n.Val[e.ID] = sum
			sum += n.FromExit[e.Dst.ID]
			if sum > maxPaths {
				return nil, fmt.Errorf("%w: routine %s", ErrTooManyPaths, g.Name)
			}
		}
		n.FromExit[v.ID] = sum
	}
	n.N = n.FromExit[g.Entry.ID]

	// Forward pass for FromEntry, used by PathsThrough.
	n.FromEntry[g.Entry.ID] = 1
	for _, v := range d.Topo {
		if v == g.Entry {
			continue
		}
		var sum int64
		for _, e := range d.In[v.ID] {
			if n.Excluded[e.ID] {
				continue
			}
			sum += n.FromEntry[e.Src.ID]
			if sum > maxPaths {
				return nil, fmt.Errorf("%w: routine %s", ErrTooManyPaths, g.Name)
			}
		}
		n.FromEntry[v.ID] = sum
	}
	return n, nil
}

// PathsThrough returns the number of complete non-excluded paths that
// pass through e (zero for excluded edges or edges off all hot paths).
func (n *Numbering) PathsThrough(e *cfg.DAGEdge) int64 {
	if n.Excluded[e.ID] {
		return 0
	}
	a := n.FromEntry[e.Src.ID]
	b := n.FromExit[e.Dst.ID]
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxPaths/b {
		return maxPaths
	}
	return a * b
}

// PathNumber returns the number of path p: the sum of edge values. The
// second result is false if p crosses an excluded edge (cold path) or is
// not a complete entry->exit path.
func (n *Numbering) PathNumber(p cfg.Path) (int64, bool) {
	if len(p) == 0 || p[0].Src != n.D.G.Entry || p[len(p)-1].Dst != n.D.G.Exit {
		return 0, false
	}
	var sum int64
	for _, e := range p {
		if n.Excluded[e.ID] {
			return 0, false
		}
		sum += n.Val[e.ID]
	}
	return sum, true
}

// Reconstruct returns the DAG path whose number is num. The edge values
// at each block are prefix sums in visit order, so the path is recovered
// by repeatedly taking the out-edge with the largest value not exceeding
// the remaining number.
func (n *Numbering) Reconstruct(num int64) (cfg.Path, error) {
	if num < 0 || num >= n.N {
		return nil, fmt.Errorf("pathnum: number %d out of range [0,%d)", num, n.N)
	}
	var p cfg.Path
	v := n.D.G.Entry
	r := num
	for v != n.D.G.Exit {
		var best *cfg.DAGEdge
		for _, e := range n.D.Out[v.ID] {
			if n.Excluded[e.ID] || n.FromExit[e.Dst.ID] == 0 {
				continue
			}
			if n.Val[e.ID] <= r && (best == nil || n.Val[e.ID] > n.Val[best.ID]) {
				best = e
			}
		}
		if best == nil {
			return nil, fmt.Errorf("pathnum: stuck reconstructing %d at %s", num, v)
		}
		r -= n.Val[best.ID]
		p = append(p, best)
		v = best.Dst
	}
	if r != 0 {
		return nil, fmt.Errorf("pathnum: residue %d reconstructing %d", r, num)
	}
	return p, nil
}

// DefiningEdge returns an edge of p that lies on no other path
// (PathsThrough == 1), or nil if p has none. A path with a defining
// edge is an obvious path (Joshi et al.): its frequency equals the
// defining edge's frequency in the edge profile.
func (n *Numbering) DefiningEdge(p cfg.Path) *cfg.DAGEdge {
	for _, e := range p {
		if n.PathsThrough(e) == 1 {
			return e
		}
	}
	return nil
}

// NonObviousPaths counts complete paths all of whose edges carry at
// least two paths, i.e. paths without a defining edge. If it returns
// zero, every path in the routine is obvious and the edge profile
// predicts the routine's path profile exactly.
func (n *Numbering) NonObviousPaths() int64 {
	excl := make([]bool, len(n.D.Edges))
	for _, e := range n.D.Edges {
		excl[e.ID] = n.Excluded[e.ID] || n.PathsThrough(e) <= 1
	}
	return n.D.TotalPaths(excl, maxPaths)
}

// AllObvious reports whether every non-excluded path is obvious.
func (n *Numbering) AllObvious() bool {
	return n.N > 0 && n.NonObviousPaths() == 0
}
