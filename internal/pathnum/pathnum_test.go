package pathnum_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/cfg"
	"pathprof/internal/cfg/cfgtest"
	"pathprof/internal/pathnum"
)

func mustDAG(t testing.TB, g *cfg.Graph) *cfg.DAG {
	t.Helper()
	d, err := cfg.BuildDAG(g)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	return d
}

func mustNumber(t testing.TB, d *cfg.DAG, excl []bool, order pathnum.Order) *pathnum.Numbering {
	t.Helper()
	n, err := pathnum.Number(d, excl, order)
	if err != nil {
		t.Fatalf("Number: %v", err)
	}
	return n
}

func TestDiamondNumbering(t *testing.T) {
	g := cfgtest.Diamond()
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderBallLarus)
	if n.N != 2 {
		t.Fatalf("N = %d, want 2", n.N)
	}
	checkBijection(t, n)
}

func TestLoopGraphNumbering(t *testing.T) {
	// The loop graph from the cfg tests has 8 DAG paths, like the
	// paper's Figure 1 example (N=8).
	g := cfg.New("loop")
	entry := g.AddBlock("entry")
	h := g.AddBlock("h")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	tl := g.AddBlock("t")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, h)
	cfgtest.Connect(g, h, b1)
	cfgtest.Connect(g, h, b2)
	cfgtest.Connect(g, b1, tl)
	cfgtest.Connect(g, b2, tl)
	cfgtest.Connect(g, tl, h)
	cfgtest.Connect(g, tl, exit)
	g.Entry = entry
	g.Exit = exit
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderBallLarus)
	if n.N != 8 {
		t.Fatalf("N = %d, want 8", n.N)
	}
	checkBijection(t, n)
}

// checkBijection verifies that path numbers are exactly a permutation
// of [0, N-1] and that Reconstruct inverts PathNumber.
func checkBijection(t testing.TB, n *pathnum.Numbering) {
	t.Helper()
	paths := n.D.EnumeratePaths(n.Excluded, -1)
	if int64(len(paths)) != n.N {
		t.Fatalf("enumerated %d paths, N = %d", len(paths), n.N)
	}
	seen := make(map[int64]bool)
	for _, p := range paths {
		num, ok := n.PathNumber(p)
		if !ok {
			t.Fatalf("PathNumber(%s) not ok", p)
		}
		if num < 0 || num >= n.N {
			t.Fatalf("path %s number %d out of [0,%d)", p, num, n.N)
		}
		if seen[num] {
			t.Fatalf("duplicate path number %d for %s", num, p)
		}
		seen[num] = true
		rp, err := n.Reconstruct(num)
		if err != nil {
			t.Fatalf("Reconstruct(%d): %v", num, err)
		}
		if rp.String() != p.String() {
			t.Fatalf("Reconstruct(%d) = %s, want %s", num, rp, p)
		}
	}
}

func TestNumberingBijectionProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(15))
		cfgtest.Profile(g, rng, 40, 200)
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		for _, order := range []pathnum.Order{pathnum.OrderBallLarus, pathnum.OrderByFreq} {
			n, err := pathnum.Number(d, nil, order)
			if err != nil {
				return false
			}
			if n.N > 5000 {
				continue
			}
			paths := d.EnumeratePaths(nil, -1)
			if int64(len(paths)) != n.N {
				return false
			}
			seen := make(map[int64]bool)
			for _, p := range paths {
				num, ok := n.PathNumber(p)
				if !ok || num < 0 || num >= n.N || seen[num] {
					return false
				}
				seen[num] = true
				rp, err := n.Reconstruct(num)
				if err != nil || rp.String() != p.String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestNumberingWithExclusionsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 4+rng.Intn(12))
		cfgtest.Profile(g, rng, 40, 200)
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		excl := make([]bool, len(d.Edges))
		for _, e := range d.Edges {
			if rng.Intn(5) == 0 {
				excl[e.ID] = true
			}
		}
		n, err := pathnum.Number(d, excl, pathnum.OrderByFreq)
		if err != nil {
			return false
		}
		if n.N > 5000 {
			return true
		}
		paths := d.EnumeratePaths(excl, -1)
		if int64(len(paths)) != n.N {
			return false
		}
		seen := make(map[int64]bool)
		for _, p := range paths {
			num, ok := n.PathNumber(p)
			if !ok || num < 0 || num >= n.N || seen[num] {
				return false
			}
			seen[num] = true
		}
		// Paths over excluded edges must be rejected.
		all := d.EnumeratePaths(nil, 20000)
		for _, p := range all {
			usesExcluded := false
			for _, e := range p {
				if excl[e.ID] {
					usesExcluded = true
					break
				}
			}
			if _, ok := n.PathNumber(p); ok == usesExcluded {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSmartNumberingHottestEdgeZero(t *testing.T) {
	g := cfgtest.Diamond()
	var ab, ac *cfg.Edge
	for _, e := range g.Edges {
		if e.Src.Name == "a" && e.Dst.Name == "b" {
			ab = e
		}
		if e.Src.Name == "a" && e.Dst.Name == "c" {
			ac = e
		}
	}
	ab.Freq = 10
	ac.Freq = 90 // c is the hot arm
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderByFreq)
	if v := n.Val[d.Real(ac.Src, ac.Dst).ID]; v != 0 {
		t.Errorf("hottest edge a->c has Val %d, want 0", v)
	}
	if v := n.Val[d.Real(ab.Src, ab.Dst).ID]; v == 0 {
		t.Errorf("cold edge a->b has Val 0, want nonzero")
	}
}

func TestPathsThroughAndObvious(t *testing.T) {
	// Diamond: both paths are obvious (each arm is a defining edge).
	g := cfgtest.Diamond()
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderBallLarus)
	if !n.AllObvious() {
		t.Errorf("diamond AllObvious = false, want true")
	}
	for _, p := range d.EnumeratePaths(nil, -1) {
		if n.DefiningEdge(p) == nil {
			t.Errorf("path %s has no defining edge", p)
		}
	}

	// Double diamond: 4 paths, every edge carries 2 paths: none obvious.
	g2 := cfg.New("dd")
	entry := g2.AddBlock("entry")
	a := g2.AddBlock("a")
	b := g2.AddBlock("b")
	c := g2.AddBlock("c")
	m := g2.AddBlock("m")
	x := g2.AddBlock("x")
	y := g2.AddBlock("y")
	j := g2.AddBlock("j")
	exit := g2.AddBlock("exit")
	cfgtest.Connect(g2, entry, a)
	cfgtest.Connect(g2, a, b)
	cfgtest.Connect(g2, a, c)
	cfgtest.Connect(g2, b, m)
	cfgtest.Connect(g2, c, m)
	cfgtest.Connect(g2, m, x)
	cfgtest.Connect(g2, m, y)
	cfgtest.Connect(g2, x, j)
	cfgtest.Connect(g2, y, j)
	cfgtest.Connect(g2, j, exit)
	g2.Entry = entry
	g2.Exit = exit
	d2 := mustDAG(t, g2)
	n2 := mustNumber(t, d2, nil, pathnum.OrderBallLarus)
	if n2.N != 4 {
		t.Fatalf("N = %d, want 4", n2.N)
	}
	if n2.AllObvious() {
		t.Errorf("double diamond AllObvious = true, want false")
	}
	if got := n2.NonObviousPaths(); got != 4 {
		t.Errorf("NonObviousPaths = %d, want 4", got)
	}
	for _, p := range d2.EnumeratePaths(nil, -1) {
		if n2.DefiningEdge(p) != nil {
			t.Errorf("path %s has defining edge in all-non-obvious graph", p)
		}
	}
}

func TestPathsThroughMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		g := cfgtest.Random(rng, 3+rng.Intn(10))
		d := mustDAG(t, g)
		n := mustNumber(t, d, nil, pathnum.OrderBallLarus)
		if n.N > 2000 {
			continue
		}
		paths := d.EnumeratePaths(nil, -1)
		count := make(map[int]int64)
		for _, p := range paths {
			for _, e := range p {
				count[e.ID]++
			}
		}
		for _, e := range d.Edges {
			if got := n.PathsThrough(e); got != count[e.ID] {
				t.Fatalf("iter %d: PathsThrough(%s) = %d, want %d\n%s", i, e, got, count[e.ID], g.Dump())
			}
		}
	}
}

func TestEventCountPreservesPathSums(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cfgtest.Random(rng, 3+rng.Intn(14))
		cfgtest.Profile(g, rng, 60, 300)
		d, err := cfg.BuildDAG(g)
		if err != nil {
			return false
		}
		excl := make([]bool, len(d.Edges))
		for _, e := range d.Edges {
			if rng.Intn(7) == 0 {
				excl[e.ID] = true
			}
		}
		for _, order := range []pathnum.Order{pathnum.OrderBallLarus, pathnum.OrderByFreq} {
			n, err := pathnum.Number(d, excl, order)
			if err != nil {
				return false
			}
			if n.N > 3000 {
				continue
			}
			for _, w := range []pathnum.Weights{pathnum.StaticWeights(d), pathnum.ProfileWeights(d)} {
				inc, chord := pathnum.EventCount(n, w)
				if !pathnum.CheckEventCount(n, inc, chord, 3000) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEventCountMovesInstrumentationOffHotTree(t *testing.T) {
	// On the diamond with a hot arm, profile-weighted event counting
	// must leave the hot arm chord-free.
	g := cfgtest.Diamond()
	for _, e := range g.Edges {
		e.Freq = 5
		if e.Src.Name == "a" && e.Dst.Name == "c" {
			e.Freq = 95
		}
		if e.Src.Name == "c" && e.Dst.Name == "d" {
			e.Freq = 95
		}
		if e.Src.Name == "entry" || e.Src.Name == "d" {
			e.Freq = 100
		}
	}
	g.Calls = 100
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderByFreq)
	inc, chord := pathnum.EventCount(n, pathnum.ProfileWeights(d))
	if !pathnum.CheckEventCount(n, inc, chord, 100) {
		t.Fatal("event counting broke path sums")
	}
	// The hot path entry->a->c->d->exit must carry no increments: a
	// chord with increment zero needs no instrumentation.
	for _, e := range d.Edges {
		hot := e.Freq >= 95
		if hot && chord[e.ID] && inc[e.ID] != 0 {
			t.Errorf("hot edge %s carries increment %d, want 0", e, inc[e.ID])
		}
	}
}

func TestReconstructRejectsOutOfRange(t *testing.T) {
	g := cfgtest.Diamond()
	d := mustDAG(t, g)
	n := mustNumber(t, d, nil, pathnum.OrderBallLarus)
	if _, err := n.Reconstruct(-1); err == nil {
		t.Error("Reconstruct(-1) succeeded")
	}
	if _, err := n.Reconstruct(n.N); err == nil {
		t.Error("Reconstruct(N) succeeded")
	}
}

func TestStaticWeightsFavorLoops(t *testing.T) {
	// In a loop graph, the static heuristic must weight loop-interior
	// edges above the loop-exit edge.
	g := cfg.New("loop")
	entry := g.AddBlock("entry")
	h := g.AddBlock("h")
	b := g.AddBlock("b")
	exit := g.AddBlock("exit")
	cfgtest.Connect(g, entry, h)
	cfgtest.Connect(g, h, b)
	cfgtest.Connect(g, b, h)
	cfgtest.Connect(g, h, exit)
	g.Entry = entry
	g.Exit = exit
	d := mustDAG(t, g)
	w := pathnum.StaticWeights(d)
	hb := d.Real(h, b)
	hx := d.Real(h, exit)
	if w[hb.ID] <= w[hx.ID] {
		t.Errorf("loop edge weight %d <= exit edge weight %d", w[hb.ID], w[hx.ID])
	}
}
