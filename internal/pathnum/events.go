package pathnum

import (
	"math"
	"sort"

	"pathprof/internal/cfg"
)

// Weights are predicted edge execution frequencies used to select the
// event-counting spanning tree, indexed by DAG edge ID. Higher-weight
// edges are preferred for the tree (and thus carry no instrumentation).
type Weights []int64

// ProfileWeights predicts future edge frequencies from the measured
// edge profile (PPP's smart event counting).
func ProfileWeights(d *cfg.DAG) Weights {
	w := make(Weights, len(d.Edges))
	for _, e := range d.Edges {
		w[e.ID] = e.Freq
	}
	return w
}

// StaticWeights predicts edge frequencies with Ball-Larus's simple
// static heuristics: loops execute 10 times and branches split 50/50.
// The estimate propagates a nominal entry frequency through the CFG
// loop-nesting structure; only the relative order matters.
func StaticWeights(d *cfg.DAG) Weights {
	g := d.G
	depth := make([]int, len(g.Blocks))
	for _, b := range g.Blocks {
		n := 0
		for l := g.LoopOf(b); l != nil; l = l.Parent {
			n++
		}
		if n > 6 {
			n = 6 // cap to keep the integer weights in range
		}
		depth[b.ID] = n
	}
	pow10 := func(n int) int64 {
		v := int64(1)
		for i := 0; i < n; i++ {
			v *= 10
		}
		return v
	}
	w := make(Weights, len(d.Edges))
	for _, e := range d.Edges {
		switch e.Kind {
		case cfg.RealEdge:
			// Edge weight: estimated frequency split evenly among the
			// source's outgoing CFG edges. Edges that leave a loop use
			// the target's (shallower) depth: they run once per entry,
			// not once per iteration.
			out := int64(len(e.Src.Out))
			if out == 0 {
				out = 1
			}
			dep := depth[e.Src.ID]
			if depth[e.Dst.ID] < dep {
				dep = depth[e.Dst.ID]
			}
			w[e.ID] = 1000 * pow10(dep) / out
		case cfg.EntryDummy:
			// Stands for back edges into this header: loop iterates 10
			// times per entry, so 9/10 of the header frequency.
			w[e.ID] = 900 * pow10(depth[e.Dst.ID]-1)
		case cfg.ExitDummy:
			w[e.ID] = 900 * pow10(depth[e.Src.ID]-1)
		}
	}
	return w
}

// EventCount reassigns edge values per Ball's event-counting algorithm:
// it chooses a maximum-weight spanning tree of the DAG (plus a virtual
// exit->entry edge that is always in the tree), assigns increment zero
// to tree edges, and for each chord computes the increment as the
// signed sum of the original values around the cycle the chord closes.
// The sum of increments along every complete path equals the path's
// number. Only edges on at least one complete non-excluded path
// participate; all other edges get increment zero and no
// instrumentation.
//
// The returned slice is indexed by DAG edge ID; entry holds the chord
// increment (tree and non-hot edges hold zero). The second result
// reports which edges are chords (instrumentation sites).
func EventCount(n *Numbering, w Weights) (inc []int64, chord []bool) {
	d := n.D
	g := d.G
	inc = make([]int64, len(d.Edges))
	chord = make([]bool, len(d.Edges))

	// Hot edges: those on at least one complete non-excluded path.
	hot := make([]bool, len(d.Edges))
	var hotEdges []*cfg.DAGEdge
	for _, e := range d.Edges {
		if n.PathsThrough(e) >= 1 {
			hot[e.ID] = true
			hotEdges = append(hotEdges, e)
		}
	}
	if len(hotEdges) == 0 {
		return inc, chord
	}

	// Kruskal maximum-weight spanning tree over the undirected hot
	// graph. The virtual exit->entry edge is inserted first so it is
	// always a tree edge (it has no value and can carry no
	// instrumentation).
	sort.SliceStable(hotEdges, func(i, j int) bool { return w[hotEdges[i].ID] > w[hotEdges[j].ID] })
	parentUF := make([]int, len(g.Blocks))
	for i := range parentUF {
		parentUF[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parentUF[x] != x {
			parentUF[x] = parentUF[parentUF[x]]
			x = parentUF[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parentUF[ra] = rb
		return true
	}

	// Tree adjacency: treeEdge[b] connects b to its tree parent.
	type treeLink struct {
		other *cfg.Block
		e     *cfg.DAGEdge // nil for the virtual edge
		// forward is true if the DAG edge points from this node to
		// other (i.e. traversing this -> other follows edge direction).
		forward bool
	}
	adj := make([][]treeLink, len(g.Blocks))
	addTree := func(e *cfg.DAGEdge, a, b *cfg.Block) {
		adj[a.ID] = append(adj[a.ID], treeLink{other: b, e: e, forward: e == nil || e.Src == a})
		adj[b.ID] = append(adj[b.ID], treeLink{other: a, e: e, forward: e != nil && e.Src == b})
	}
	union(g.Exit.ID, g.Entry.ID)
	addTree(nil, g.Exit, g.Entry) // virtual edge, value 0
	for _, e := range hotEdges {
		if union(e.Src.ID, e.Dst.ID) {
			addTree(e, e.Src, e.Dst)
		} else {
			chord[e.ID] = true
		}
	}

	// Root the tree at entry; record parent links and depth.
	parent := make([]treeLink, len(g.Blocks))
	depth := make([]int, len(g.Blocks))
	inTree := make([]bool, len(g.Blocks))
	stack := []*cfg.Block{g.Entry}
	inTree[g.Entry.ID] = true
	order := []*cfg.Block{}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, b)
		for _, l := range adj[b.ID] {
			if inTree[l.other.ID] {
				continue
			}
			inTree[l.other.ID] = true
			// Link from child (l.other) to parent (b): forward is true
			// if the DAG edge points child -> parent.
			fwd := l.e != nil && l.e.Src == l.other
			parent[l.other.ID] = treeLink{other: b, e: l.e, forward: fwd}
			depth[l.other.ID] = depth[b.ID] + 1
			stack = append(stack, l.other)
		}
	}

	val := func(e *cfg.DAGEdge) int64 {
		if e == nil {
			return 0
		}
		return n.Val[e.ID]
	}

	// For each chord c = (u, v): walk the cycle c, then v up to the LCA,
	// then down to u. Tree edges traversed along their direction add
	// their value; against it subtract. The chord itself counts +Val(c).
	for _, c := range hotEdges {
		if !chord[c.ID] {
			continue
		}
		sum := val(c)
		u, v := c.Src, c.Dst
		// Walk both ends up to the LCA. From v we walk child->parent in
		// the same direction as the cycle; from u we walk child->parent
		// against the cycle direction.
		x, y := v, u
		for depth[x.ID] > depth[y.ID] {
			l := parent[x.ID]
			if l.forward { // edge points x -> parent: along cycle
				sum += val(l.e)
			} else {
				sum -= val(l.e)
			}
			x = l.other
		}
		for depth[y.ID] > depth[x.ID] {
			l := parent[y.ID]
			if l.forward { // edge points y -> parent: against cycle
				sum -= val(l.e)
			} else {
				sum += val(l.e)
			}
			y = l.other
		}
		for x != y {
			lx := parent[x.ID]
			if lx.forward {
				sum += val(lx.e)
			} else {
				sum -= val(lx.e)
			}
			x = lx.other
			ly := parent[y.ID]
			if ly.forward {
				sum -= val(ly.e)
			} else {
				sum += val(ly.e)
			}
			y = ly.other
		}
		inc[c.ID] = sum
	}
	return inc, chord
}

// CheckEventCount verifies on small routines that the chord increments
// preserve every path's number; used by tests and debug assertions.
func CheckEventCount(n *Numbering, inc []int64, chord []bool, maxPathsToCheck int) bool {
	if n.N > int64(maxPathsToCheck) {
		return true
	}
	paths := n.D.EnumeratePaths(n.Excluded, maxPathsToCheck)
	for _, p := range paths {
		want, ok := n.PathNumber(p)
		if !ok {
			continue
		}
		var got int64
		for _, e := range p {
			if chord[e.ID] {
				got += inc[e.ID]
			}
		}
		if got != want {
			return false
		}
	}
	return true
}

// MaxAbsInc returns the largest absolute chord increment, a proxy for
// instrumentation range used in diagnostics.
func MaxAbsInc(inc []int64) int64 {
	var m int64
	for _, v := range inc {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	if m > math.MaxInt64 {
		return math.MaxInt64
	}
	return m
}
