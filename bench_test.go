// Package pathprof's repository-level benchmarks regenerate every
// table and figure of Bond & McKinley, "Practical Path Profiling for
// Dynamic Optimizers" (CGO 2005) over the 18 SPEC2000-shaped synthetic
// workloads:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its table/figure once and reports the headline
// numbers as benchmark metrics. The workload suite is staged and
// profiled once and shared across benchmarks, so the first benchmark
// pays the full cost (~half a minute) and the rest reuse it.
package pathprof

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"pathprof/internal/bench"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = bench.NewSuite()
		if _, err := suite.RunAll(); err != nil {
			b.Fatalf("staging suite: %v", err)
		}
	})
	return suite
}

// emit renders the experiment once to stdout (first iteration only)
// and to io.Discard afterwards, so -bench output stays readable while
// b.N timing still exercises the regeneration path.
func emit(b *testing.B, name string, run func(io.Writer) error) {
	s := sharedSuite(b)
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 {
			fmt.Fprintf(os.Stdout, "\n")
			w = os.Stdout
		}
		if err := run(w); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: dynamic path characteristics
// with and without profile-guided inlining and unrolling.
func BenchmarkTable1(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "table1", s.Table1)
}

// BenchmarkTable2 regenerates Table 2: distinct and hot paths at the
// 0.125% and 1% flow thresholds.
func BenchmarkTable2(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "table2", s.Table2)
}

// BenchmarkFigure9 regenerates Figure 9 (accuracy) and reports the
// suite-average accuracy of edge profiling, TPP, and PPP.
func BenchmarkFigure9(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "fig9", s.Figure9)
	rs, err := s.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	var e, t, p float64
	for _, r := range rs {
		ea, ta, pa := r.Accuracy()
		e += ea
		t += ta
		p += pa
	}
	n := float64(len(rs))
	b.ReportMetric(100*e/n, "edge-acc-%")
	b.ReportMetric(100*t/n, "tpp-acc-%")
	b.ReportMetric(100*p/n, "ppp-acc-%")
}

// BenchmarkFigure10 regenerates Figure 10 (coverage).
func BenchmarkFigure10(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "fig10", s.Figure10)
	rs, err := s.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	var e, t, p float64
	for _, r := range rs {
		ec, tc, pc := r.Coverage()
		e += ec
		t += tc
		p += pc
	}
	n := float64(len(rs))
	b.ReportMetric(100*e/n, "edge-cov-%")
	b.ReportMetric(100*t/n, "tpp-cov-%")
	b.ReportMetric(100*p/n, "ppp-cov-%")
}

// BenchmarkFigure11 regenerates Figure 11 (fraction of dynamic paths
// instrumented, with the hashed portion).
func BenchmarkFigure11(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "fig11", s.Figure11)
}

// BenchmarkFigure12 regenerates Figure 12 (runtime overhead) and
// reports the suite-average overheads — the paper's headline result.
func BenchmarkFigure12(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "fig12", s.Figure12)
	rs, err := s.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	var pp, tpp, ppp float64
	for _, r := range rs {
		pp += r.Profilers["PP"].Overhead()
		tpp += r.Profilers["TPP"].Overhead()
		ppp += r.Profilers["PPP"].Overhead()
	}
	n := float64(len(rs))
	b.ReportMetric(100*pp/n, "pp-overhead-%")
	b.ReportMetric(100*tpp/n, "tpp-overhead-%")
	b.ReportMetric(100*ppp/n, "ppp-overhead-%")
}

// BenchmarkFigure13 regenerates Figure 13 (the leave-one-out ablation
// of PPP's techniques, normalized to TPP).
func BenchmarkFigure13(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "fig13", s.Figure13)
}

// BenchmarkSACReport verifies the Section 4.3 claim that the
// self-adjusting criterion engages for few routines with few
// iterations.
func BenchmarkSACReport(b *testing.B) {
	s := sharedSuite(b)
	emit(b, "sac", s.SACReport)
}
