// Command minic compiles and runs a mini-C program directly, without
// any profiling — the plain front door to the language the workloads
// and examples are written in.
//
// Usage:
//
//	minic prog.mc            # run main()
//	minic -entry f prog.mc   # run another zero-argument function
//	minic -dump prog.mc      # print the IR instead of running
//	minic -stats prog.mc     # also print executed steps and model cost
package main

import (
	"flag"
	"fmt"
	"os"

	"pathprof/internal/lower"
	"pathprof/internal/vm"
)

func main() {
	entry := flag.String("entry", "main", "function to run")
	dump := flag.Bool("dump", false, "print the compiled IR and exit")
	stats := flag.Bool("stats", false, "print execution statistics")
	maxSteps := flag.Int64("max-steps", 0, "abort after this many executed statements (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minic [flags] prog.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := lower.Compile(string(src), lower.Options{})
	if err != nil {
		fatalf("%v", err)
	}
	if *dump {
		fmt.Print(prog.Dump())
		return
	}
	res, err := vm.Run(prog, vm.Options{
		Entry:    *entry,
		Output:   os.Stdout,
		MaxSteps: *maxSteps,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "return=%d steps=%d cost=%d calls=%d\n",
			res.Ret, res.Steps, res.Cost(), res.DynCalls)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "minic: "+format+"\n", args...)
	os.Exit(1)
}
