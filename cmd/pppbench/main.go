// Command pppbench regenerates the paper's tables and figures over
// the synthetic SPEC2000-shaped workload suite.
//
// Usage:
//
//	pppbench [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|sac|net|static|throughput|faults|backend|placement]
//	         [-backend dense|compiled] [-placement spanning|mincost] [-workloads a,b,c]
//	         [-par n] [-replicas n] [-faults spec] [-json] [-v] [-cpuprofile f] [-memprofile f]
//
// The workload sweep runs on a bounded worker pool (-par, default
// GOMAXPROCS); table and figure output is deterministic regardless of
// parallelism. With -json, the human-readable tables are suppressed
// and one JSON document with per-experiment wall-clock times and the
// suite's headline metrics is written to stdout instead.
//
// -exp throughput measures sharded concurrent collection
// (vm.RunReplicated) at 1/2/4/8 workers with -replicas runs per
// measurement; because its numbers are wall-clock, it only runs when
// requested explicitly, never under -exp all. -cpuprofile/-memprofile
// write go tool pprof profiles, for diagnosing scaling regressions in
// the collector.
//
// -exp faults runs guarded replication under deterministic fault
// injection (-faults seed=N,kind=panic+stall+overflow[,rate=r]) and
// reports shard quarantine, lost flow, counter saturation, and merge
// determinism across worker counts and both VM backends. Also
// explicit-only: its outcome depends on the requested fault spec.
//
// -backend selects the VM execution strategy for the pipeline runs:
// "dense" (the interpreter, default) or "compiled" (threaded code);
// every table and figure is identical under either. -exp backend runs
// the cross-backend smoke: the workload sweep PP-instrumented on both
// backends at 1 and 8 workers, diffing merged fingerprints (a
// divergence is a hard failure) and reporting wall clock, speedup, and
// per-routine compile cost. With -json, the comparison lands in the
// report's backend_comparison field.
//
// -placement selects the edge-probe placement the suite's pipelines
// plan under: "spanning" (a counter per CFG transition, default) or
// "mincost" (probes only on the cotree chords of a max-cost spanning
// tree, remaining counts recovered by flow conservation); every table
// and figure is identical under either. -exp placement runs the
// spanning-vs-mincost head-to-head: per-workload probe-site counts and
// modeled overhead for PP/TPP/PPP under both placements, plus the
// recovery bit-identity check at 1/2/4/8 workers on both backends (a
// fingerprint divergence is a hard failure). With -json, the
// comparison lands in the report's placement_comparison field.
//
// Observability: -serve :addr exposes the suite's live telemetry over
// HTTP (/metrics Prometheus text, /debug/vars, /debug/pprof, trace
// exports) and keeps serving after the experiments finish, until
// interrupted. -trace f writes the planner decision trace on exit —
// JSON lines when f ends in .jsonl (byte-identical across identical
// runs), Chrome trace_event JSON otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pathprof/internal/bench"
	"pathprof/internal/instr"
	srv "pathprof/internal/serve"
	"pathprof/internal/telemetry"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

// report is the -json output document.
type report struct {
	Workloads   []string           `json:"workloads"`
	Parallelism int                `json:"parallelism"`
	Backend     string             `json:"backend"`
	Placement   string             `json:"placement"`
	Experiments []experimentTiming `json:"experiments"`
	TotalSecs   float64            `json:"total_seconds"`
	Headline    map[string]float64 `json:"headline"`
	// StaticOps lists per-routine, per-profiler static instrumentation
	// (path-profiling ops and edge probe sites) under the selected
	// placement.
	StaticOps []bench.StaticOpsRow `json:"static_ops,omitempty"`
	// Backends holds the dense-vs-compiled comparison (wall clock,
	// speedup, per-routine compile stats) when -exp backend ran.
	Backends *bench.BackendReport `json:"backend_comparison,omitempty"`
	// Placements holds the spanning-vs-mincost probe-placement
	// head-to-head when -exp placement ran.
	Placements *bench.PlacementReport `json:"placement_comparison,omitempty"`
}

type experimentTiming struct {
	Name string  `json:"name"`
	Secs float64 `json:"seconds"`
}

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "all", "experiment to regenerate (all, table1, table2, fig9, fig10, fig11, fig12, fig13, sac, net, static, throughput, faults, backend, placement)")
	backendName := flag.String("backend", "dense", "VM execution backend for pipeline runs (dense, compiled)")
	placementName := flag.String("placement", "spanning", "edge-probe placement for pipeline runs (spanning, mincost)")
	names := flag.String("workloads", "", "comma-separated subset of workloads (default: all 18)")
	par := flag.Int("par", 0, "worker pool size for the workload sweep (0 = GOMAXPROCS, 1 = sequential)")
	replicas := flag.Int("replicas", bench.DefaultThroughputReplicas, "replicas per measurement in -exp throughput/faults")
	faults := flag.String("faults", "seed=1,kind=panic+overflow", "fault spec for -exp faults: seed=N,kind=a+b[,rate=r]")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (wall-clock + headline metrics) instead of tables")
	serve := flag.String("serve", "", "serve live telemetry (/metrics, /debug/vars, /debug/pprof, trace exports) on this address and block after the experiments")
	traceOut := flag.String("trace", "", "write the decision trace to this file on exit (.jsonl = JSON lines, else Chrome trace_event JSON)")
	verbose := flag.Bool("v", false, "log progress to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	backend, err := vm.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	placement, err := instr.ParsePlacement(*placementName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	s := bench.NewSuite()
	s.Parallelism = *par
	s.Backend = backend
	s.Placement = placement
	if *verbose {
		s.Log = os.Stderr
	}
	var telemetrySrv *srv.Graceful
	var telemetryErr <-chan error
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/\n", ln.Addr())
		telemetrySrv = &srv.Graceful{Handler: s.Telemetry.Handler(), Log: os.Stderr}
		telemetryErr = telemetrySrv.Start(ln)
	}
	if *names != "" {
		var sel []workloads.Workload
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q; available: %s\n",
					n, strings.Join(workloads.Names(), ", "))
				return 2
			}
			sel = append(sel, w)
		}
		s.Workloads = sel
	}

	type experiment struct {
		name string
		run  func(io.Writer) error
		// onlyExplicit excludes wall-clock experiments from -exp all so
		// the default output stays deterministic.
		onlyExplicit bool
	}
	all := []experiment{
		{"table1", s.Table1, false},
		{"table2", s.Table2, false},
		{"fig9", s.Figure9, false},
		{"fig10", s.Figure10, false},
		{"fig11", s.Figure11, false},
		{"fig12", s.Figure12, false},
		{"fig13", s.Figure13, false},
		{"sac", s.SACReport, false},
		{"net", s.NETReport, false},
		{"static", s.StaticReport, false},
		{"throughput", func(w io.Writer) error { return s.ThroughputReport(w, *replicas) }, true},
		{"faults", func(w io.Writer) error { return s.FaultsReport(w, *faults, *replicas) }, true},
		// run functions filled in below; they need access to rep.
		{"backend", nil, true},
		{"placement", nil, true},
	}
	rep := report{Parallelism: s.Parallelism, Backend: backend.String(), Placement: placement.String()}
	all[len(all)-2].run = func(w io.Writer) error {
		br, err := s.BackendSmoke(w, *replicas)
		rep.Backends = br
		return err
	}
	all[len(all)-1].run = func(w io.Writer) error {
		pr, err := s.PlacementTable(w, *replicas)
		rep.Placements = pr
		return err
	}
	for _, w := range s.Workloads {
		rep.Workloads = append(rep.Workloads, w.Name)
	}
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = io.Discard
	}
	start := time.Now()
	ran := false
	for _, e := range all {
		if *exp == "all" {
			if e.onlyExplicit {
				continue
			}
		} else if *exp != e.name {
			continue
		}
		ran = true
		t0 := time.Now()
		if err := e.run(out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			return 1
		}
		rep.Experiments = append(rep.Experiments, experimentTiming{e.name, time.Since(t0).Seconds()})
		if !*jsonOut {
			fmt.Println()
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	rep.TotalSecs = time.Since(start).Seconds()

	if *jsonOut {
		headline, err := s.Headline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "headline: %v\n", err)
			return 1
		}
		rep.Headline = headline
		rep.StaticOps, err = s.StaticOpsRows()
		if err != nil {
			fmt.Fprintf(os.Stderr, "static ops: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
	}
	if *traceOut != "" {
		if err := writeTrace(s.Telemetry.Trace(), *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
	}
	if *serve != "" {
		fmt.Fprintf(os.Stderr, "experiments done; serving telemetry until SIGINT/SIGTERM\n")
		ctx, stop := srv.SignalContext()
		defer stop()
		if err := telemetrySrv.Wait(ctx, telemetryErr); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeTrace exports the decision trace: JSON lines for .jsonl paths,
// Chrome trace_event JSON otherwise.
func writeTrace(tr *telemetry.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
