// Command pppbench regenerates the paper's tables and figures over
// the synthetic SPEC2000-shaped workload suite.
//
// Usage:
//
//	pppbench [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|sac] [-workloads a,b,c] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pathprof/internal/bench"
	"pathprof/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, table1, table2, fig9, fig10, fig11, fig12, fig13, sac, net, static)")
	names := flag.String("workloads", "", "comma-separated subset of workloads (default: all 18)")
	verbose := flag.Bool("v", false, "log progress to stderr")
	flag.Parse()

	s := bench.NewSuite()
	if *verbose {
		s.Log = os.Stderr
	}
	if *names != "" {
		var sel []workloads.Workload
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q; available: %s\n",
					n, strings.Join(workloads.Names(), ", "))
				os.Exit(2)
			}
			sel = append(sel, w)
		}
		s.Workloads = sel
	}

	type experiment struct {
		name string
		run  func(io.Writer) error
	}
	all := []experiment{
		{"table1", s.Table1},
		{"table2", s.Table2},
		{"fig9", s.Figure9},
		{"fig10", s.Figure10},
		{"fig11", s.Figure11},
		{"fig12", s.Figure12},
		{"fig13", s.Figure13},
		{"sac", s.SACReport},
		{"net", s.NETReport},
		{"static", s.StaticReport},
	}
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
