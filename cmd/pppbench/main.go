// Command pppbench regenerates the paper's tables and figures over
// the synthetic SPEC2000-shaped workload suite.
//
// Usage:
//
//	pppbench [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|sac|net|static]
//	         [-workloads a,b,c] [-par n] [-json] [-v]
//
// The workload sweep runs on a bounded worker pool (-par, default
// GOMAXPROCS); table and figure output is deterministic regardless of
// parallelism. With -json, the human-readable tables are suppressed
// and one JSON document with per-experiment wall-clock times and the
// suite's headline metrics is written to stdout instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pathprof/internal/bench"
	"pathprof/internal/workloads"
)

// report is the -json output document.
type report struct {
	Workloads   []string           `json:"workloads"`
	Parallelism int                `json:"parallelism"`
	Experiments []experimentTiming `json:"experiments"`
	TotalSecs   float64            `json:"total_seconds"`
	Headline    map[string]float64 `json:"headline"`
}

type experimentTiming struct {
	Name string  `json:"name"`
	Secs float64 `json:"seconds"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (all, table1, table2, fig9, fig10, fig11, fig12, fig13, sac, net, static)")
	names := flag.String("workloads", "", "comma-separated subset of workloads (default: all 18)")
	par := flag.Int("par", 0, "worker pool size for the workload sweep (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (wall-clock + headline metrics) instead of tables")
	verbose := flag.Bool("v", false, "log progress to stderr")
	flag.Parse()

	s := bench.NewSuite()
	s.Parallelism = *par
	if *verbose {
		s.Log = os.Stderr
	}
	if *names != "" {
		var sel []workloads.Workload
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q; available: %s\n",
					n, strings.Join(workloads.Names(), ", "))
				os.Exit(2)
			}
			sel = append(sel, w)
		}
		s.Workloads = sel
	}

	type experiment struct {
		name string
		run  func(io.Writer) error
	}
	all := []experiment{
		{"table1", s.Table1},
		{"table2", s.Table2},
		{"fig9", s.Figure9},
		{"fig10", s.Figure10},
		{"fig11", s.Figure11},
		{"fig12", s.Figure12},
		{"fig13", s.Figure13},
		{"sac", s.SACReport},
		{"net", s.NETReport},
		{"static", s.StaticReport},
	}
	rep := report{Parallelism: s.Parallelism}
	for _, w := range s.Workloads {
		rep.Workloads = append(rep.Workloads, w.Name)
	}
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = io.Discard
	}
	start := time.Now()
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		t0 := time.Now()
		if err := e.run(out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		rep.Experiments = append(rep.Experiments, experimentTiming{e.name, time.Since(t0).Seconds()})
		if !*jsonOut {
			fmt.Println()
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	rep.TotalSecs = time.Since(start).Seconds()

	if *jsonOut {
		headline, err := s.Headline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "headline: %v\n", err)
			os.Exit(1)
		}
		rep.Headline = headline
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}
