package main

// The unit-checker half of the vet protocol: cmd/go invokes the
// vettool once per package with a single argument, the path to a JSON
// "vet config" describing the package's files, its import map, and
// where each dependency's gc export data lives. The tool type-checks
// the package against that export data, runs the analyzers, writes the
// (empty) facts file vet expects, and exits 2 if it found anything.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"pathprof/internal/lint"
)

// vetConfig mirrors the JSON written by cmd/go for vet tools. Fields
// this tool does not consume are kept so the decoder accepts every
// config cmd/go produces.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	// cmd/go insists the facts file exists even though these analyzers
	// produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, fmt.Errorf("write facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tc := &types.Config{
		Importer: &unitImporter{cfg: &cfg, fset: fset},
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags := lint.RunAll(fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// unitImporter resolves imports through the vet config: the source
// import path maps to a package ID, whose gc export data file vet
// names in PackageFile.
type unitImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	gc   types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if u.gc == nil {
		u.gc = importer.ForCompiler(u.fset, "gc", u.lookup)
	}
	// The lookup-based gc importer resolves canonical IDs; translate
	// the source-level path first.
	id := path
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		id = mapped
	}
	return u.gc.(types.ImporterFrom).ImportFrom(id, u.cfg.Dir, 0)
}

func (u *unitImporter) lookup(id string) (io.ReadCloser, error) {
	file, ok := u.cfg.PackageFile[id]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", id)
	}
	return os.Open(file)
}
