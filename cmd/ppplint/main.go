// Command ppplint is a vettool running this repository's custom
// static checks (see internal/lint): mapiter, hotpath, and wallclock.
//
// Usage, via go vet (the usual way):
//
//	go build -o /tmp/ppplint ./cmd/ppplint
//	go vet -vettool=/tmp/ppplint ./...
//
// or directly with package patterns, in which case ppplint re-executes
// itself through go vet:
//
//	ppplint ./...
//
// The tool speaks cmd/go's vettool protocol by hand (the -V=full
// version handshake, the -flags listing, and the JSON unit config that
// vet passes for every package) because golang.org/x/tools and its
// go/analysis/unitchecker are not available in this build environment.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ppplint [package pattern...]  (or via go vet -vettool)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// No analyzer flags beyond the protocol ones.
		fmt.Println("[]")
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		code, err := runUnit(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppplint: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	case flag.NArg() > 0:
		reexecViaVet(flag.Args())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printVersion implements the -V=full handshake: cmd/go derives the
// vettool's build ID from this line, so it must contain the word
// "version" and a content hash that changes when the tool changes.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

// reexecViaVet handles direct invocation with package patterns by
// driving go vet with itself as the vettool, so users get the same
// package loading vet does.
func reexecViaVet(patterns []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppplint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ppplint: %v\n", err)
		os.Exit(1)
	}
}
