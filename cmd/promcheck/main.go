// Command promcheck validates Prometheus text exposition format read
// from stdin (or a file argument) using the repository's stdlib-only
// checker. CI pipes a live /metrics response through it to catch
// malformed exposition before a real scraper would.
//
// Beyond line syntax, every family declared `# TYPE <name> histogram`
// is cross-checked as a histogram: strictly increasing `le` bounds,
// monotone cumulative bucket counts, a terminal `+Inf` bucket, and
// `_sum`/`_count` series consistent with the buckets.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck metrics.txt
//
// Exit status 0 when the input parses and contains at least one
// sample; 1 with a line-numbered diagnostic otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"pathprof/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stderr)) }

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	in := stdin
	if len(args) > 1 {
		fmt.Fprintln(stderr, "promcheck: at most one file argument")
		return 2
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(stderr, "promcheck: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	if err := telemetry.ValidatePrometheus(in); err != nil {
		fmt.Fprintf(stderr, "promcheck: %v\n", err)
		return 1
	}
	return 0
}
