package main

import (
	"io"
	"strings"
	"testing"
)

func check(t *testing.T, input string) int {
	t.Helper()
	return run(nil, strings.NewReader(input), io.Discard)
}

func TestGoodHistogramPasses(t *testing.T) {
	input := `# TYPE ppp_serve_ack_e2e_us histogram
ppp_serve_ack_e2e_us_bucket{le="100"} 2
ppp_serve_ack_e2e_us_bucket{le="1000"} 5
ppp_serve_ack_e2e_us_bucket{le="+Inf"} 6
ppp_serve_ack_e2e_us_sum 4200
ppp_serve_ack_e2e_us_count 6
`
	if got := check(t, input); got != 0 {
		t.Fatalf("well-formed histogram rejected: exit %d", got)
	}
}

func TestLabeledHistogramGroupsPass(t *testing.T) {
	input := `# TYPE ppp_serve_http_duration_us histogram
ppp_serve_http_duration_us_bucket{endpoint="ingest",le="100"} 1
ppp_serve_http_duration_us_bucket{endpoint="ingest",le="+Inf"} 1
ppp_serve_http_duration_us_sum{endpoint="ingest"} 80
ppp_serve_http_duration_us_count{endpoint="ingest"} 1
ppp_serve_http_duration_us_bucket{endpoint="metrics",le="100"} 3
ppp_serve_http_duration_us_bucket{endpoint="metrics",le="+Inf"} 4
ppp_serve_http_duration_us_sum{endpoint="metrics"} 500
ppp_serve_http_duration_us_count{endpoint="metrics"} 4
`
	if got := check(t, input); got != 0 {
		t.Fatalf("labeled histogram groups rejected: exit %d", got)
	}
}

func TestNonMonotoneBucketsFail(t *testing.T) {
	input := `# TYPE h histogram
h_bucket{le="10"} 5
h_bucket{le="100"} 3
h_bucket{le="+Inf"} 5
h_sum 40
h_count 5
`
	if got := check(t, input); got != 1 {
		t.Fatalf("decreasing cumulative counts accepted: exit %d", got)
	}
}

func TestMissingInfBucketFails(t *testing.T) {
	input := `# TYPE h histogram
h_bucket{le="10"} 5
h_bucket{le="100"} 7
h_sum 40
h_count 7
`
	if got := check(t, input); got != 1 {
		t.Fatalf("missing +Inf bucket accepted: exit %d", got)
	}
}

func TestCountBucketMismatchFails(t *testing.T) {
	input := `# TYPE h histogram
h_bucket{le="10"} 5
h_bucket{le="+Inf"} 7
h_sum 40
h_count 9
`
	if got := check(t, input); got != 1 {
		t.Fatalf("_count disagreeing with +Inf bucket accepted: exit %d", got)
	}
}

func TestMissingSumFails(t *testing.T) {
	input := `# TYPE h histogram
h_bucket{le="+Inf"} 2
h_count 2
`
	if got := check(t, input); got != 1 {
		t.Fatalf("missing _sum accepted: exit %d", got)
	}
}
