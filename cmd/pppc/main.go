// Command pppc compiles a mini-C program (a file or a named built-in
// workload), runs the staged-optimization pipeline, instruments it
// with a chosen path profiler, executes it, and reports the measured
// hot paths, accuracy, coverage, and runtime overhead.
//
// Usage:
//
//	pppc -workload mcf -profiler PPP
//	pppc -src prog.mc -profiler TPP -hot 10
//	pppc -src prog.mc -profiler PPP -dump-plans
//	pppc -workload mcf -profiler PPP -placement mincost -verify=both
//	pppc -workload mcf -snapshot mcf.ppsnap
//	pppc -workload mcf -faults seed=7,kind=panic+overflow
//	pppc -workload mcf -trace trace.jsonl -serve :8080
//
// -trace writes the planner decision trace on exit (JSON lines when
// the path ends in .jsonl, Chrome trace_event JSON otherwise); -serve
// exposes live telemetry (/metrics, /debug/vars, /debug/pprof, trace
// exports) and blocks after the run until interrupted.
//
// Malformed or hostile input — unparsable source, truncated files,
// corrupt profiles or snapshots — produces a diagnostic on stderr and
// a nonzero exit, never a panic.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/faultinject"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
	srv "pathprof/internal/serve"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
	"pathprof/internal/verify"
	"pathprof/internal/vm"
	"pathprof/internal/workloads"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its environment abstracted, so hostile-input
// behavior (diagnostic + nonzero exit, never a panic) is testable
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pppc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	src := fs.String("src", "", "mini-C source file to profile")
	workload := fs.String("workload", "", "built-in workload name instead of -src")
	profiler := fs.String("profiler", "PPP", "profiler: PP, TPP, PPP, or PPP-{SAC,FP,Push,SPN,LC}")
	hot := fs.Int("hot", 10, "number of hot paths to print")
	noOpt := fs.Bool("no-opt", false, "skip profile-guided inlining and unrolling")
	backendName := fs.String("backend", "dense", "VM execution backend (dense, compiled)")
	placementName := fs.String("placement", "spanning", "edge-probe placement (spanning, mincost)")
	verifyMode := fs.String("verify", "", "statically verify every instrumentation plan: proof (all-paths abstract interpretation), enum (budgeted enumeration), or both (differential)")
	dumpPlans := fs.Bool("dump-plans", false, "dump per-routine instrumentation plans")
	saveProfile := fs.String("save-profile", "", "write the optimized run's edge profile to a file")
	loadProfile := fs.String("load-profile", "", "guide instrumentation with this edge profile instead of the run's own")
	snapPath := fs.String("snapshot", "", "durable profile snapshot path: load (with .prev fallback) before the run, save after")
	faults := fs.String("faults", "", "deterministic fault injection spec: seed=N,kind=panic+stall+overflow+snapcorrupt+badcfg[,rate=r]")
	dumpIR := fs.Bool("dump-ir", false, "dump the optimized IR")
	serve := fs.String("serve", "", "serve live telemetry (/metrics, /debug/vars, /debug/pprof, trace exports) on this address and block on exit")
	traceOut := fs.String("trace", "", "write the planner decision trace to this file (.jsonl = JSON lines, else Chrome trace_event JSON)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(stderr, "pppc: "+format+"\n", a...)
		return 1
	}

	var inj *faultinject.Injector
	if *faults != "" {
		var err error
		if inj, err = faultinject.Parse(*faults); err != nil {
			return fail("%v", err)
		}
	}

	var name, source string
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			return fail("unknown workload %q", *workload)
		}
		name, source = w.Name, w.Source
	case *src != "":
		data, err := os.ReadFile(*src)
		if err != nil {
			return fail("%v", err)
		}
		name, source = *src, string(data)
	default:
		return fail("need -src or -workload (try -workload mcf)")
	}

	tech, ok := techFor(*profiler)
	if !ok {
		return fail("unknown profiler %q", *profiler)
	}

	// A pre-existing snapshot is consulted before the run: corruption
	// is a warning (the store falls back to .prev when it can), not a
	// reason to refuse fresh profiling.
	var store *snapshot.Store
	if *snapPath != "" {
		store = snapshot.NewStore(*snapPath)
		prev, fellBack, err := store.Load()
		switch {
		case err == nil && fellBack:
			fmt.Fprintf(stderr, "pppc: snapshot %s corrupt; recovered previous snapshot %016x from %s\n",
				store.Path(), prev.Fingerprint(), store.PrevPath())
		case err == nil:
			fmt.Fprintf(stdout, "previous snapshot %016x loaded from %s\n", prev.Fingerprint(), store.Path())
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to load.
		default:
			fmt.Fprintf(stderr, "pppc: snapshot %s unusable (no fallback): %v\n", store.Path(), err)
		}
	}

	// Telemetry is only constructed when an exposition flag asks for
	// it; otherwise the nil registry keeps every emission site on its
	// no-op fast path.
	var reg *telemetry.Registry
	if *serve != "" || *traceOut != "" {
		reg = telemetry.NewRegistry(1)
	}
	var telemetrySrv *srv.Graceful
	var telemetryErr <-chan error
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return fail("serve: %v", err)
		}
		fmt.Fprintf(stderr, "telemetry on http://%s/\n", ln.Addr())
		telemetrySrv = &srv.Graceful{Handler: reg.Handler(), Log: stderr}
		telemetryErr = telemetrySrv.Start(ln)
	}

	backend, err := vm.ParseBackend(*backendName)
	if err != nil {
		return fail("%v", err)
	}
	placement, err := instr.ParsePlacement(*placementName)
	if err != nil {
		return fail("%v", err)
	}

	pipe := core.NewPipeline(name, source)
	pipe.NoOpt = *noOpt
	pipe.Backend = backend
	pipe.Instr.Placement = placement
	pipe.Instr.Trace = reg.Trace()
	pipe.Metrics = telemetry.NewVMMetrics(reg)
	staged, err := pipe.Stage()
	if err != nil {
		return fail("stage: %v", err)
	}
	if *dumpIR {
		fmt.Fprint(stdout, staged.Prog.Dump())
	}

	stats := core.StatsOf(staged.Base)
	fmt.Fprintf(stdout, "%s: %d dynamic paths, %.2f branches/path, %.2f instrs/path\n",
		name, stats.DynPaths, stats.AvgBranches, stats.AvgInstrs)
	if !*noOpt {
		fmt.Fprintf(stdout, "inlining: %.0f%% of dynamic calls removed; unrolling avg factor applied; speedup %.2fx\n",
			100*staged.PctCallsInlined(), staged.Speedup())
	}

	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			return fail("%v", err)
		}
		if err := profile.WriteEdgeProfiles(f, staged.Base.Edges); err != nil {
			return fail("save profile: %v", err)
		}
		if err := f.Close(); err != nil {
			return fail("save profile: %v", err)
		}
		fmt.Fprintf(stdout, "edge profile saved to %s\n", *saveProfile)
	}
	guide := staged.Base.Edges
	if *loadProfile != "" {
		f, err := os.Open(*loadProfile)
		if err != nil {
			return fail("%v", err)
		}
		guide, err = profile.ReadEdgeProfiles(f)
		f.Close()
		if err != nil {
			return fail("load profile: %v", err)
		}
		fmt.Fprintf(stdout, "guiding instrumentation with %s\n", *loadProfile)
	}

	pr, err := staged.ProfileWith(*profiler, tech, guide)
	if err != nil {
		return fail("profile: %v", err)
	}
	if *verifyMode != "" {
		mode, err := verify.ParseMode(*verifyMode)
		if err != nil {
			return fail("%v", err)
		}
		diags, ok := verify.CheckAll(pr.Plans, verify.Options{
			Mode: mode, Trace: reg.Trace(), TraceUnit: name + "/verify",
		})
		if !ok {
			for _, d := range diags {
				fmt.Fprintln(stderr, d)
			}
			return fail("verify: %d invariant violation(s) in %s plans", len(diags), *profiler)
		}
		fmt.Fprintf(stdout, "verify(%s): %d routine plan(s) ok\n", mode, len(pr.Plans))
	}
	if *dumpPlans {
		names := make([]string, 0, len(pr.Plans))
		for n := range pr.Plans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprint(stdout, pr.Plans[n].Dump())
		}
	}

	fmt.Fprintf(stdout, "%s overhead: %.1f%% (base cost %d, instrumentation cost %d)\n",
		*profiler, 100*pr.Overhead(), pr.Run.BaseCost, pr.Run.InstrCost)

	hotPaths := pr.Eval.HotPaths(bench.HotTheta)
	est := pr.Eval.EstimatedProfile(bench.HotTheta)
	fmt.Fprintf(stdout, "accuracy %.1f%%, coverage %.1f%% (edge profile alone: %.1f%%)\n",
		100*eval.Accuracy(hotPaths, est), 100*pr.Eval.Coverage().Value(),
		100*pr.Eval.EdgeCoverage().Value())
	if pr.SACAdjusted > 0 {
		fmt.Fprintf(stdout, "self-adjusting criterion: %d routine(s), max %d iteration(s)\n",
			pr.SACAdjusted, pr.MaxSACIterations)
	}
	if pr.Degraded() > 0 {
		fmt.Fprintf(stdout, "degraded mode: %s\n", pr.ModeSummary())
	}

	if store != nil {
		snap := pr.Run.Snapshot()
		if err := store.Save(snap); err != nil {
			return fail("save snapshot: %v", err)
		}
		fmt.Fprintf(stdout, "snapshot %016x saved to %s\n", snap.Fingerprint(), store.Path())
	}

	if inj != nil {
		if err := faultDrill(stdout, inj, staged, pr, reg.Trace(), name+"/faults"); err != nil {
			return fail("faults: %v", err)
		}
	}

	fmt.Fprintf(stdout, "\nhottest %d paths (of %d hot at %.3f%% of flow):\n",
		min(*hot, len(hotPaths)), len(hotPaths), 100*bench.HotTheta)
	for i, h := range hotPaths {
		if i >= *hot {
			break
		}
		fmt.Fprintf(stdout, "  %8d x  %s | %s\n", h.Freq, h.Routine, h.Path)
	}

	if *traceOut != "" {
		if err := writeTrace(reg.Trace(), *traceOut); err != nil {
			return fail("trace: %v", err)
		}
		fmt.Fprintf(stdout, "decision trace (%d events) written to %s\n", reg.Trace().Len(), *traceOut)
	}
	if *serve != "" {
		fmt.Fprintf(stderr, "pppc: done; serving telemetry until SIGINT/SIGTERM\n")
		ctx, stop := srv.SignalContext()
		defer stop()
		if err := telemetrySrv.Wait(ctx, telemetryErr); err != nil {
			return fail("serve: %v", err)
		}
	}
	return 0
}

// writeTrace exports the decision trace: JSON lines for .jsonl paths,
// Chrome trace_event JSON otherwise.
func writeTrace(tr *telemetry.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// faultDrill exercises the robustness machinery against the staged
// program under the parsed injector and reports what degraded and how.
// Every fault kind must complete with a structured report — an error
// return here means the guardrails themselves are broken.
func faultDrill(w io.Writer, inj *faultinject.Injector, staged *core.Staged, pr *core.ProfilerResult, tr *telemetry.Trace, unit string) error {
	fmt.Fprintf(w, "\nfault drill: %s\n", inj)

	// panic/stall/overflow drive guarded replication.
	if inj.Active(faultinject.Panic) || inj.Active(faultinject.Stall) || inj.Active(faultinject.Overflow) {
		entry := staged.Pipeline.Entry
		if entry == "" {
			entry = "main"
		}
		opts := vm.Options{
			Costs: staged.Pipeline.Costs, Entry: staged.Pipeline.Entry,
			MaxSteps:     staged.Pipeline.MaxSteps,
			CollectEdges: true, CollectPaths: true,
			Guard: bench.FaultGuard(inj, []string{entry}, tr, unit),
			Trace: tr, TraceUnit: unit,
			Backend: staged.Pipeline.Backend,
		}
		rr, err := vm.RunReplicated(staged.Prog, opts, 8, 4)
		if err != nil {
			fmt.Fprintf(w, "  guarded run: %v\n", err)
		} else {
			fmt.Fprintf(w, "  guarded run: %d/%d replicas survived, merged fingerprint %016x\n",
				rr.Survivors(), rr.Replicas, rr.Merged.Fingerprint())
			for _, f := range rr.Faults {
				fmt.Fprintf(w, "  - %v\n", f)
			}
			if sat := rr.Merged.SaturatedRoutines(); len(sat) > 0 {
				fmt.Fprintf(w, "  saturated counters (edge-only fallback): %v\n", sat)
			}
		}
	}

	// snapcorrupt damages an encoded snapshot; the decoder must reject
	// it with a structured error, never crash or accept it.
	if inj.Active(faultinject.SnapCorrupt) {
		data := snapshot.Encode(pr.Run.Snapshot())
		bad := inj.Corrupt(data, 1)
		if _, err := snapshot.Decode(bad); err != nil {
			fmt.Fprintf(w, "  snapcorrupt: decoder rejected damaged snapshot: %v\n", err)
		} else {
			return fmt.Errorf("snapcorrupt: damaged snapshot was accepted")
		}
	}

	// badcfg truncates the source mid-token; the pipeline must answer
	// with a diagnostic, not a panic.
	if inj.Active(faultinject.BadCFG) {
		src := staged.Pipeline.Source
		cut := 1 + int(inj.Rand(faultinject.BadCFG, 0)%uint64(len(src)-1))
		if _, err := core.NewPipeline("badcfg", src[:cut]).Stage(); err != nil {
			fmt.Fprintf(w, "  badcfg: truncated source rejected: %v\n", err)
		} else {
			fmt.Fprintf(w, "  badcfg: source truncated at %d/%d still staged cleanly\n", cut, len(src))
		}
	}
	return nil
}

func techFor(name string) (instr.Techniques, bool) {
	switch name {
	case "PP":
		return instr.PP(), true
	case "TPP":
		return instr.TPP(), true
	case "PPP":
		return instr.PPP(), true
	}
	for ab, tech := range core.Ablations() {
		if name == "PPP-"+ab {
			return tech, true
		}
	}
	return instr.Techniques{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
