// Command pppc compiles a mini-C program (a file or a named built-in
// workload), runs the staged-optimization pipeline, instruments it
// with a chosen path profiler, executes it, and reports the measured
// hot paths, accuracy, coverage, and runtime overhead.
//
// Usage:
//
//	pppc -workload mcf -profiler PPP
//	pppc -src prog.mc -profiler TPP -hot 10
//	pppc -src prog.mc -profiler PPP -dump-plans
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pathprof/internal/bench"
	"pathprof/internal/core"
	"pathprof/internal/eval"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
	"pathprof/internal/verify"
	"pathprof/internal/workloads"
)

func main() {
	src := flag.String("src", "", "mini-C source file to profile")
	workload := flag.String("workload", "", "built-in workload name instead of -src")
	profiler := flag.String("profiler", "PPP", "profiler: PP, TPP, PPP, or PPP-{SAC,FP,Push,SPN,LC}")
	hot := flag.Int("hot", 10, "number of hot paths to print")
	noOpt := flag.Bool("no-opt", false, "skip profile-guided inlining and unrolling")
	verifyPlans := flag.Bool("verify", false, "statically verify every instrumentation plan before running")
	dumpPlans := flag.Bool("dump-plans", false, "dump per-routine instrumentation plans")
	saveProfile := flag.String("save-profile", "", "write the optimized run's edge profile to a file")
	loadProfile := flag.String("load-profile", "", "guide instrumentation with this edge profile instead of the run's own")
	dumpIR := flag.Bool("dump-ir", false, "dump the optimized IR")
	flag.Parse()

	var name, source string
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fatalf("unknown workload %q", *workload)
		}
		name, source = w.Name, w.Source
	case *src != "":
		data, err := os.ReadFile(*src)
		if err != nil {
			fatalf("%v", err)
		}
		name, source = *src, string(data)
	default:
		fatalf("need -src or -workload (try -workload mcf)")
	}

	tech, ok := techFor(*profiler)
	if !ok {
		fatalf("unknown profiler %q", *profiler)
	}

	pipe := core.NewPipeline(name, source)
	pipe.NoOpt = *noOpt
	staged, err := pipe.Stage()
	if err != nil {
		fatalf("stage: %v", err)
	}
	if *dumpIR {
		fmt.Print(staged.Prog.Dump())
	}

	stats := core.StatsOf(staged.Base)
	fmt.Printf("%s: %d dynamic paths, %.2f branches/path, %.2f instrs/path\n",
		name, stats.DynPaths, stats.AvgBranches, stats.AvgInstrs)
	if !*noOpt {
		fmt.Printf("inlining: %.0f%% of dynamic calls removed; unrolling avg factor applied; speedup %.2fx\n",
			100*staged.PctCallsInlined(), staged.Speedup())
	}

	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := profile.WriteEdgeProfiles(f, staged.Base.Edges); err != nil {
			fatalf("save profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("save profile: %v", err)
		}
		fmt.Printf("edge profile saved to %s\n", *saveProfile)
	}
	guide := staged.Base.Edges
	if *loadProfile != "" {
		f, err := os.Open(*loadProfile)
		if err != nil {
			fatalf("%v", err)
		}
		guide, err = profile.ReadEdgeProfiles(f)
		f.Close()
		if err != nil {
			fatalf("load profile: %v", err)
		}
		fmt.Printf("guiding instrumentation with %s\n", *loadProfile)
	}

	pr, err := staged.ProfileWith(*profiler, tech, guide)
	if err != nil {
		fatalf("profile: %v", err)
	}
	if *verifyPlans {
		diags, ok := verify.CheckAll(pr.Plans, verify.Options{})
		if !ok {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			fatalf("verify: %d invariant violation(s) in %s plans", len(diags), *profiler)
		}
		fmt.Printf("verify: %d routine plan(s) ok\n", len(pr.Plans))
	}
	if *dumpPlans {
		names := make([]string, 0, len(pr.Plans))
		for n := range pr.Plans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Print(pr.Plans[n].Dump())
		}
	}

	fmt.Printf("%s overhead: %.1f%% (base cost %d, instrumentation cost %d)\n",
		*profiler, 100*pr.Overhead(), pr.Run.BaseCost, pr.Run.InstrCost)

	hotPaths := pr.Eval.HotPaths(bench.HotTheta)
	est := pr.Eval.EstimatedProfile(bench.HotTheta)
	fmt.Printf("accuracy %.1f%%, coverage %.1f%% (edge profile alone: %.1f%%)\n",
		100*eval.Accuracy(hotPaths, est), 100*pr.Eval.Coverage().Value(),
		100*pr.Eval.EdgeCoverage().Value())
	if pr.SACAdjusted > 0 {
		fmt.Printf("self-adjusting criterion: %d routine(s), max %d iteration(s)\n",
			pr.SACAdjusted, pr.MaxSACIterations)
	}

	fmt.Printf("\nhottest %d paths (of %d hot at %.3f%% of flow):\n",
		min(*hot, len(hotPaths)), len(hotPaths), 100*bench.HotTheta)
	for i, h := range hotPaths {
		if i >= *hot {
			break
		}
		fmt.Printf("  %8d x  %s | %s\n", h.Freq, h.Routine, h.Path)
	}
}

func techFor(name string) (instr.Techniques, bool) {
	switch name {
	case "PP":
		return instr.PP(), true
	case "TPP":
		return instr.TPP(), true
	case "PPP":
		return instr.PPP(), true
	}
	for ab, tech := range core.Ablations() {
		if name == "PPP-"+ab {
			return tech, true
		}
	}
	return instr.Techniques{}, false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
