package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec invokes run in-process, converting any panic into a test
// failure: hostile input must always end in a diagnostic and an exit
// code, never a crash.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("pppc %v panicked: %v", args, r)
		}
	}()
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHostileInput feeds pppc the malformed and truncated inputs a
// dynamic optimizer's tooling meets in the wild. Every case must exit
// nonzero with a diagnostic on stderr.
func TestHostileInput(t *testing.T) {
	cases := []struct {
		name string
		args func(t *testing.T) []string
	}{
		{"no-input", func(t *testing.T) []string { return nil }},
		{"missing-file", func(t *testing.T) []string {
			return []string{"-src", filepath.Join(t.TempDir(), "nope.mc")}
		}},
		{"unknown-workload", func(t *testing.T) []string { return []string{"-workload", "quake3"} }},
		{"unknown-profiler", func(t *testing.T) []string { return []string{"-workload", "mcf", "-profiler", "XXX"} }},
		{"empty-source", func(t *testing.T) []string { return []string{"-src", writeFile(t, "e.mc", "")} }},
		{"truncated-source", func(t *testing.T) []string {
			return []string{"-src", writeFile(t, "t.mc", "func main() { return 1 +")}
		}},
		{"binary-garbage", func(t *testing.T) []string {
			return []string{"-src", writeFile(t, "g.mc", "\x00\x8a\xff{{{{func func func")}
		}},
		{"undefined-call", func(t *testing.T) []string {
			return []string{"-src", writeFile(t, "u.mc", "func main() { return ghost(); }")}
		}},
		{"bad-fault-spec", func(t *testing.T) []string {
			return []string{"-workload", "mcf", "-faults", "kind=panic"}
		}},
		{"bad-fault-kind", func(t *testing.T) []string {
			return []string{"-workload", "mcf", "-faults", "seed=1,kind=gremlins"}
		}},
		{"corrupt-edge-profile", func(t *testing.T) []string {
			return []string{"-workload", "mcf", "-load-profile", writeFile(t, "p.prof", "not a profile\n\x00\x01")}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := exec(t, c.args(t)...)
			if code == 0 {
				t.Fatalf("hostile input exited 0\nstderr: %s", stderr)
			}
			if strings.TrimSpace(stderr) == "" {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// TestSnapshotLifecycle drives -snapshot end to end through the CLI:
// first run creates the file, second run loads it and rotates it to
// .prev, and a corrupted primary is recovered from the fallback with a
// warning rather than an error.
func TestSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vpr.ppsnap")
	args := []string{"-workload", "vpr", "-snapshot", path}

	code, out, stderr := exec(t, args...)
	if code != 0 {
		t.Fatalf("first run exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "saved to "+path) {
		t.Fatalf("no save confirmation in output:\n%s", out)
	}

	code, out, stderr = exec(t, args...)
	if code != 0 {
		t.Fatalf("second run exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "previous snapshot") {
		t.Fatalf("second run did not load the saved snapshot:\n%s", out)
	}

	// Damage the primary: the .prev fallback from the rotation must
	// carry the run, with a recovery notice on stderr.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = exec(t, args...)
	if code != 0 {
		t.Fatalf("run with corrupt primary exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "recovered previous snapshot") {
		t.Fatalf("no recovery notice:\n%s", stderr)
	}
}

// TestFaultDrillCompletes runs every fault kind through the CLI: each
// must finish with a structured degradation report and exit 0.
func TestFaultDrillCompletes(t *testing.T) {
	code, out, stderr := exec(t,
		"-workload", "vpr", "-faults", "seed=2026,kind=all,rate=0.4")
	if code != 0 {
		t.Fatalf("fault drill exited %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"fault drill:", "guarded run:", "snapcorrupt:", "badcfg:"} {
		if !strings.Contains(out, want) {
			t.Errorf("drill output missing %q:\n%s", want, out)
		}
	}
}
