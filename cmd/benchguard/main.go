// Command benchguard gates CI on a pppbench -json report. It enforces
// a hard wall-clock budget (-max-secs) and, given a baseline report
// from an earlier run (-baseline), a soft wall-clock regression check:
// a run more than -tolerance-pct slower than the baseline prints a
// warning (or fails under -strict). Headline-metric drifts beyond the
// tolerance are reported the same way, so a probe-placement or planner
// change that moves measured overhead shows up in the CI log next to
// the timing gate.
//
// Usage:
//
//	pppbench -json > bench.json
//	benchguard -max-secs 300 -baseline prev.json bench.json
//
// Exit status: 0 when every hard gate passes (soft findings are
// warnings), 1 on a hard failure or, with -strict, any finding, 2 on
// usage errors. A missing or unreadable baseline is informational
// either way — the first run after a cache wipe has nothing to
// compare against and must not break the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// benchReport mirrors the fields of pppbench's -json document that the
// guard consumes; unknown fields are ignored so the two tools can
// evolve independently.
type benchReport struct {
	Workloads []string           `json:"workloads"`
	TotalSecs float64            `json:"total_seconds"`
	Headline  map[string]float64 `json:"headline"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxSecs := fs.Float64("max-secs", 0, "hard wall-clock budget in seconds (0 disables)")
	baseline := fs.String("baseline", "", "baseline pppbench -json report to diff against")
	tolerance := fs.Float64("tolerance-pct", 10, "allowed regression over the baseline, percent")
	strict := fs.Bool("strict", false, "treat soft findings as failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "benchguard: at most one report argument")
		return 2
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	cur, err := readReport(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: report: %v\n", err)
		return 1
	}

	hard, soft := 0, 0
	warn := func(format string, a ...any) {
		soft++
		fmt.Fprintf(stderr, "benchguard: warning: "+format+"\n", a...)
	}
	fail := func(format string, a ...any) {
		hard++
		fmt.Fprintf(stderr, "benchguard: FAIL: "+format+"\n", a...)
	}

	if len(cur.Headline) == 0 {
		fail("report carries no headline metrics (not a pppbench -json document?)")
	}
	if cur.TotalSecs <= 0 {
		fail("report carries no positive total_seconds")
	}
	if *maxSecs > 0 && cur.TotalSecs > *maxSecs {
		fail("wall clock %.1fs exceeds the %.1fs budget", cur.TotalSecs, *maxSecs)
	}

	if *baseline != "" {
		// A missing or unreadable baseline is informational, not a
		// finding: the first run after a cache wipe has nothing to
		// compare against and must pass even under -strict.
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(stdout, "benchguard: no usable baseline: %v\n", err)
		} else {
			base, err := readReport(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stdout, "benchguard: baseline unreadable: %v\n", err)
			} else {
				diffBaseline(cur, base, *tolerance, stdout, warn)
			}
		}
	}

	fmt.Fprintf(stdout, "benchguard: %.1fs over %d workload(s), %d hard failure(s), %d warning(s)\n",
		cur.TotalSecs, len(cur.Workloads), hard, soft)
	if hard > 0 || (*strict && soft > 0) {
		return 1
	}
	return 0
}

func readReport(r io.Reader) (*benchReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	rep := &benchReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// diffBaseline reports wall-clock and headline drift beyond the
// tolerance. Headline metrics here are overhead percentages — lower is
// better — so only increases count as regressions; improvements are
// logged for the record.
func diffBaseline(cur, base *benchReport, tolerancePct float64, stdout io.Writer, warn func(string, ...any)) {
	if base.TotalSecs > 0 {
		deltaPct := 100 * (cur.TotalSecs - base.TotalSecs) / base.TotalSecs
		fmt.Fprintf(stdout, "benchguard: wall clock %.1fs vs baseline %.1fs (%+.1f%%)\n",
			cur.TotalSecs, base.TotalSecs, deltaPct)
		if deltaPct > tolerancePct {
			warn("wall clock regressed %.1f%% over baseline (tolerance %.1f%%)", deltaPct, tolerancePct)
		}
	}
	keys := make([]string, 0, len(base.Headline))
	for k := range base.Headline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base.Headline[k]
		c, ok := cur.Headline[k]
		if !ok {
			warn("headline metric %q vanished from the report", k)
			continue
		}
		if b == 0 {
			continue
		}
		deltaPct := 100 * (c - b) / b
		if deltaPct > tolerancePct {
			warn("headline %q regressed: %.2f -> %.2f (%+.1f%%, tolerance %.1f%%)",
				k, b, c, deltaPct, tolerancePct)
		} else if deltaPct < -tolerancePct {
			fmt.Fprintf(stdout, "benchguard: headline %q improved: %.2f -> %.2f (%+.1f%%)\n", k, b, c, deltaPct)
		}
	}
}
