package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodReport = `{
	"workloads": ["mcf", "swim"],
	"total_seconds": 12.5,
	"headline": {"ppp_overhead_pct": 5.0, "pp_overhead_pct": 30.0}
}`

func runGuard(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardAcceptsHealthyReport(t *testing.T) {
	code, out, errb := runGuard(t, nil, goodReport)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "0 hard failure(s), 0 warning(s)") {
		t.Fatalf("summary missing: %s", out)
	}
}

func TestGuardEnforcesBudget(t *testing.T) {
	code, _, errb := runGuard(t, []string{"-max-secs", "10"}, goodReport)
	if code != 1 || !strings.Contains(errb, "exceeds the 10.0s budget") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if code, _, _ := runGuard(t, []string{"-max-secs", "60"}, goodReport); code != 0 {
		t.Fatal("within-budget report rejected")
	}
}

func TestGuardRejectsNonReports(t *testing.T) {
	if code, _, _ := runGuard(t, nil, `{"total_seconds": 0}`); code != 1 {
		t.Fatal("accepted a report with no headline and zero wall clock")
	}
	if code, _, _ := runGuard(t, nil, "not json"); code != 1 {
		t.Fatal("accepted unparseable input")
	}
}

func TestGuardBaselineSoftRegression(t *testing.T) {
	base := writeTemp(t, `{
		"workloads": ["mcf", "swim"],
		"total_seconds": 10.0,
		"headline": {"ppp_overhead_pct": 4.0, "pp_overhead_pct": 40.0}
	}`)
	// 25% slower and ppp overhead up 25%: two warnings, but exit 0
	// without -strict.
	code, out, errb := runGuard(t, []string{"-baseline", base}, goodReport)
	if code != 0 {
		t.Fatalf("soft regression hard-failed: %s", errb)
	}
	if !strings.Contains(errb, "wall clock regressed") || !strings.Contains(errb, `headline "ppp_overhead_pct" regressed`) {
		t.Fatalf("warnings missing: %s", errb)
	}
	if !strings.Contains(out, `headline "pp_overhead_pct" improved`) {
		t.Fatalf("improvement not logged: %s", out)
	}
	// -strict promotes the warnings to a failure.
	if code, _, _ := runGuard(t, []string{"-baseline", base, "-strict"}, goodReport); code != 1 {
		t.Fatal("-strict did not fail on soft findings")
	}
}

func TestGuardMissingBaselineIsInformational(t *testing.T) {
	// Even under -strict: the first run has no baseline to diff.
	code, out, errb := runGuard(t, []string{"-baseline", "/nonexistent/prev.json", "-strict"}, goodReport)
	if code != 0 || !strings.Contains(out, "no usable baseline") {
		t.Fatalf("exit %d, stdout: %s, stderr: %s", code, out, errb)
	}
}

func TestGuardReadsFileArgument(t *testing.T) {
	p := writeTemp(t, goodReport)
	if code, _, errb := runGuard(t, []string{p}, ""); code != 0 {
		t.Fatalf("file argument rejected: %s", errb)
	}
	if code, _, _ := runGuard(t, []string{p, p}, ""); code != 2 {
		t.Fatal("two file arguments accepted")
	}
}
