// Command pppload is the load generator and drill client for pppd:
// it profiles a built-in workload once, then has N concurrent
// emitters publish the resulting PPSNAP snapshot to the service with
// idempotent keys, jittered exponential-backoff retries, and deadline
// propagation — the client half of the chaos drill.
//
// Usage:
//
//	pppload -addr http://127.0.0.1:9523 -workload mcf -emitters 8 -count 4
//	pppload -addr http://127.0.0.1:9523 -workload mcf -verify
//
// With -verify, pppload fetches the tenant's commit log and merged
// aggregate afterward and refolds the published snapshot once per
// committed entry, asserting the server's fingerprint is bit-identical
// to the local fold — acked snapshots are all in the aggregate, each
// exactly once, regardless of retries, drops, and backpressure along
// the way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
	"pathprof/internal/serve"
	"pathprof/internal/snapshot"
	"pathprof/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:9523", "pppd base URL")
	workload := flag.String("workload", "mcf", "built-in workload to profile and publish")
	tenant := flag.String("tenant", "", "tenant name (default: the workload name)")
	emitters := flag.Int("emitters", 8, "concurrent emitter goroutines")
	count := flag.Int("count", 4, "snapshots each emitter publishes")
	attempts := flag.Int("attempts", 8, "max attempts per publish")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for the whole load run")
	seed := flag.Uint64("seed", 1, "backoff jitter seed")
	verifyFlag := flag.Bool("verify", false, "refold the commit log locally and assert fingerprint identity")
	flag.Parse()

	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(os.Stderr, "pppload: "+format+"\n", a...)
		return 1
	}

	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}
	w, ok := workloads.ByName(*workload)
	if !ok {
		return fail("unknown workload %q", *workload)
	}
	if *tenant == "" {
		*tenant = w.Name
	}

	// Profile the workload once; every emitter publishes this snapshot
	// under distinct idempotency keys, so the expected aggregate is
	// the snapshot folded once per acked key.
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		return fail("stage %s: %v", w.Name, err)
	}
	pr, err := staged.ProfileWith("PP", instr.PP(), nil)
	if err != nil {
		return fail("profile %s: %v", w.Name, err)
	}
	snap := pr.Run.Snapshot()
	data := snapshot.Encode(snap)
	fmt.Printf("pppload: %s snapshot %016x (%d bytes), %d emitters x %d\n",
		w.Name, snap.Fingerprint(), len(data), *emitters, *count)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	type outcome struct {
		acks     int
		deduped  int
		attempts int
		err      error
	}
	results := make([]outcome, *emitters)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &serve.Client{
				BaseURL:     *addr,
				MaxAttempts: *attempts,
				Backoff:     serve.Backoff{Seed: *seed},
			}
			for j := 0; j < *count; j++ {
				key := fmt.Sprintf("e%d-s%d", i, j)
				res, err := client.Publish(ctx, *tenant, key, data)
				if err != nil {
					results[i].err = err
					return
				}
				results[i].acks++
				results[i].attempts += res.Attempts
				if res.Ack.Deduped {
					results[i].deduped++
				}
			}
		}(i)
	}
	wg.Wait()

	var acks, deduped, tries, failures int
	for i := range results {
		acks += results[i].acks
		deduped += results[i].deduped
		tries += results[i].attempts
		if results[i].err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "pppload: emitter %d: %v\n", i, results[i].err)
		}
	}
	fmt.Printf("pppload: %d acked (%d deduped) over %d attempts in %v; %d emitter failure(s)\n",
		acks, deduped, tries, time.Since(start).Round(time.Millisecond), failures)

	if *verifyFlag {
		client := &serve.Client{BaseURL: *addr}
		log, err := client.FetchLog(ctx, *tenant)
		if err != nil {
			return fail("fetch log: %v", err)
		}
		_, serverFP, err := client.Fetch(ctx, *tenant)
		if err != nil {
			return fail("fetch aggregate: %v", err)
		}
		want := profile.NewSnapshot()
		for range log {
			one, err := snapshot.Decode(data)
			if err != nil {
				return fail("decode own snapshot: %v", err)
			}
			want.MergeSnapshot(one)
		}
		localFP := fmt.Sprintf("%016x", want.Fingerprint())
		if localFP != serverFP {
			return fail("fingerprint mismatch: server %s, local refold of %d commits %s", serverFP, len(log), localFP)
		}
		fmt.Printf("pppload: verified: %d committed snapshots refold to server fingerprint %s\n", len(log), serverFP)
	}
	if failures > 0 {
		return 1
	}
	return 0
}
