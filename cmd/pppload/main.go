// Command pppload is the load generator and drill client for pppd:
// it profiles a built-in workload once, then has N concurrent
// emitters publish the resulting PPSNAP snapshot to the service with
// idempotent keys, jittered exponential-backoff retries, and deadline
// propagation — the client half of the chaos drill.
//
// Usage:
//
//	pppload -addr http://127.0.0.1:9523 -workload mcf -emitters 8 -count 4
//	pppload -addr http://127.0.0.1:9523 -workload mcf -verify
//	pppload -addr http://127.0.0.1:9523 -workload mcf -exp latency -json bench.json
//
// With -verify, pppload fetches the tenant's commit log and merged
// aggregate afterward and refolds the published snapshot once per
// committed entry, asserting the server's fingerprint is bit-identical
// to the local fold — acked snapshots are all in the aggregate, each
// exactly once, regardless of retries, drops, and backpressure along
// the way. It also reports client-observed vs server-observed latency
// (the skew is transport, queueing the server never timed, and chaos
// delays).
//
// With -exp latency, pppload scrapes the server's
// ppp_serve_ack_e2e_us histogram after the run and reports p50/p95/p99
// ack latency plus achieved updates/sec; -json writes a
// benchguard-compatible report (all headline metrics lower-is-better)
// seeding the service-side bench trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"pathprof/internal/core"
	"pathprof/internal/instr"
	"pathprof/internal/profile"
	"pathprof/internal/serve"
	"pathprof/internal/snapshot"
	"pathprof/internal/telemetry"
	"pathprof/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:9523", "pppd base URL")
	workload := flag.String("workload", "mcf", "built-in workload to profile and publish")
	tenant := flag.String("tenant", "", "tenant name (default: the workload name)")
	emitters := flag.Int("emitters", 8, "concurrent emitter goroutines")
	count := flag.Int("count", 4, "snapshots each emitter publishes")
	attempts := flag.Int("attempts", 8, "max attempts per publish")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for the whole load run")
	seed := flag.Uint64("seed", 1, "backoff jitter seed")
	verifyFlag := flag.Bool("verify", false, "refold the commit log locally and assert fingerprint identity")
	exp := flag.String("exp", "", "experiment mode: \"latency\" reports ack-latency quantiles from the server's histograms")
	jsonOut := flag.String("json", "", "with -exp latency: write a benchguard-compatible JSON report to this path")
	flag.Parse()

	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(os.Stderr, "pppload: "+format+"\n", a...)
		return 1
	}

	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}
	w, ok := workloads.ByName(*workload)
	if !ok {
		return fail("unknown workload %q", *workload)
	}
	if *tenant == "" {
		*tenant = w.Name
	}

	// Profile the workload once; every emitter publishes this snapshot
	// under distinct idempotency keys, so the expected aggregate is
	// the snapshot folded once per acked key.
	staged, err := core.NewPipeline(w.Name, w.Source).Stage()
	if err != nil {
		return fail("stage %s: %v", w.Name, err)
	}
	pr, err := staged.ProfileWith("PP", instr.PP(), nil)
	if err != nil {
		return fail("profile %s: %v", w.Name, err)
	}
	snap := pr.Run.Snapshot()
	data := snapshot.Encode(snap)
	fmt.Printf("pppload: %s snapshot %016x (%d bytes), %d emitters x %d\n",
		w.Name, snap.Fingerprint(), len(data), *emitters, *count)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *exp != "" && *exp != "latency" {
		return fail("unknown -exp mode %q (want \"latency\")", *exp)
	}

	type outcome struct {
		acks     int
		deduped  int
		attempts int
		rttUS    int64 // summed round-trip time of successful attempts
		err      error
	}
	results := make([]outcome, *emitters)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &serve.Client{
				BaseURL:     *addr,
				MaxAttempts: *attempts,
				Backoff:     serve.Backoff{Seed: *seed},
			}
			for j := 0; j < *count; j++ {
				key := fmt.Sprintf("e%d-s%d", i, j)
				res, err := client.Publish(ctx, *tenant, key, data)
				if err != nil {
					results[i].err = err
					return
				}
				results[i].acks++
				results[i].attempts += res.Attempts
				if res.Ack.Deduped {
					results[i].deduped++
				}
				if n := len(res.Timings); n > 0 {
					results[i].rttUS += res.Timings[n-1].RTT.Microseconds()
				}
			}
		}(i)
	}
	wg.Wait()

	elapsed := time.Since(start)
	var acks, deduped, tries, failures int
	var clientRTTUS int64
	for i := range results {
		acks += results[i].acks
		deduped += results[i].deduped
		tries += results[i].attempts
		clientRTTUS += results[i].rttUS
		if results[i].err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "pppload: emitter %d: %v\n", i, results[i].err)
		}
	}
	fmt.Printf("pppload: %d acked (%d deduped) over %d attempts in %v; %d emitter failure(s)\n",
		acks, deduped, tries, elapsed.Round(time.Millisecond), failures)

	if *exp == "latency" {
		if code := latencyReport(ctx, *addr, w.Name, acks, clientRTTUS, elapsed, *jsonOut); code != 0 {
			return code
		}
	}

	if *verifyFlag {
		client := &serve.Client{BaseURL: *addr}
		log, err := client.FetchLog(ctx, *tenant)
		if err != nil {
			return fail("fetch log: %v", err)
		}
		_, serverFP, err := client.Fetch(ctx, *tenant)
		if err != nil {
			return fail("fetch aggregate: %v", err)
		}
		want := profile.NewSnapshot()
		for range log {
			one, err := snapshot.Decode(data)
			if err != nil {
				return fail("decode own snapshot: %v", err)
			}
			want.MergeSnapshot(one)
		}
		localFP := fmt.Sprintf("%016x", want.Fingerprint())
		if localFP != serverFP {
			return fail("fingerprint mismatch: server %s, local refold of %d commits %s", serverFP, len(log), localFP)
		}
		fmt.Printf("pppload: verified: %d committed snapshots refold to server fingerprint %s\n", len(log), serverFP)

		// Client-vs-server latency skew: the gap between what clients
		// waited on their final (successful) attempts and what the
		// server measured admission-to-ack is transport, handler-side
		// queueing outside the measured stages, and chaos delays.
		if hist, err := scrapeAckHist(ctx, *addr); err == nil && acks > 0 && hist.Count > 0 {
			clientMean := float64(clientRTTUS) / float64(acks)
			serverMean := hist.Sum / float64(hist.Count)
			fmt.Printf("pppload: latency skew: client mean rtt %s vs server mean ack-e2e %s (skew %s)\n",
				telemetry.FormatUS(clientMean), telemetry.FormatUS(serverMean),
				telemetry.FormatUS(clientMean-serverMean))
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// scrapeAckHist fetches /metrics and reconstructs the server's
// ack-e2e latency histogram.
func scrapeAckHist(ctx context.Context, addr string) (*telemetry.HistScrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: server %d", resp.StatusCode)
	}
	hist, ok := telemetry.ScrapeHistogram(string(body), "ppp_serve_ack_e2e_us")
	if !ok {
		return nil, fmt.Errorf("metrics: no ppp_serve_ack_e2e_us histogram in exposition")
	}
	return hist, nil
}

// latencyReport is the -exp latency epilogue: quantiles from the
// server's ack-e2e histogram, achieved throughput, the client-side
// view, and optionally a benchguard-compatible JSON report. Every
// headline metric is lower-is-better, matching benchguard's drift
// direction.
func latencyReport(ctx context.Context, addr, workload string, acks int, clientRTTUS int64, elapsed time.Duration, jsonOut string) int {
	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(os.Stderr, "pppload: "+format+"\n", a...)
		return 1
	}
	hist, err := scrapeAckHist(ctx, addr)
	if err != nil {
		return fail("latency experiment: %v", err)
	}
	p50, p95, p99 := hist.Quantile(0.50), hist.Quantile(0.95), hist.Quantile(0.99)
	upsec := float64(acks) / elapsed.Seconds()
	fmt.Printf("pppload: ack latency (server, n=%d): p50 %s  p95 %s  p99 %s\n",
		hist.Count, telemetry.FormatUS(p50), telemetry.FormatUS(p95), telemetry.FormatUS(p99))
	fmt.Printf("pppload: throughput: %.1f updates/sec (%d acks in %v)\n",
		upsec, acks, elapsed.Round(time.Millisecond))
	if acks > 0 {
		fmt.Printf("pppload: client mean rtt of acked publishes: %s\n",
			telemetry.FormatUS(float64(clientRTTUS)/float64(acks)))
	}
	if jsonOut == "" {
		return 0
	}
	if acks == 0 {
		return fail("latency experiment: no acks, refusing to write a baseline")
	}
	report := struct {
		Workloads []string           `json:"workloads"`
		TotalSecs float64            `json:"total_seconds"`
		Headline  map[string]float64 `json:"headline"`
	}{
		Workloads: []string{workload},
		TotalSecs: elapsed.Seconds(),
		Headline: map[string]float64{
			"serve_ack_p50_us":    p50,
			"serve_ack_p95_us":    p95,
			"serve_ack_p99_us":    p99,
			"serve_us_per_update": 1e6 / upsec,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fail("latency experiment: encode report: %v", err)
	}
	if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
		return fail("latency experiment: %v", err)
	}
	fmt.Printf("pppload: wrote latency report to %s\n", jsonOut)
	return 0
}
