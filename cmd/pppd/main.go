// Command pppd is the fault-tolerant multi-tenant profile service:
// clients POST PPSNAP snapshots to per-program tenants, pppd folds
// them into durable per-tenant aggregates with the collector's
// deterministic shard merge, and serves the merged snapshots, NET
// hot-path predictions, and instrumentation plans back out.
//
// Usage:
//
//	pppd -addr :9523 -store ./profiles
//	pppd -addr :9523 -store mem -queue 64 -batch 16
//	pppd -addr :9523 -store ./profiles -faults seed=7,kind=conndrop+storefail,rate=0.2
//
// Endpoints:
//
//	POST /v1/profiles/{tenant}       ingest a snapshot (ack JSON; 429/503 + Retry-After under pressure)
//	GET  /v1/profiles/{tenant}       merged aggregate (PPSNAP bytes)
//	GET  /v1/profiles/{tenant}/info  aggregate summary
//	GET  /v1/profiles/{tenant}/log   commit log (fold order)
//	GET  /v1/hot/{tenant}            NET hot-path predictions
//	GET  /v1/plans/{tenant}          instrumentation plan IR for built-in workloads
//	GET  /v1/drift/{tenant}          profile-drift report (live aggregate vs served guide)
//	GET  /debug/ppp                  live ops dashboard
//	GET  /v1/tenants, /healthz, /metrics, /debug/..., /trace.*
//
// Every request emits one structured access-log line on stderr
// (tenant, endpoint, status, duration, trace ID, retry attempt);
// -quiet disables it.
//
// An acknowledged snapshot is durable: pppd acks only after the
// updated aggregate is committed to the store, so a crash and restart
// resumes from exactly the acked state. SIGINT/SIGTERM drains: the
// listener closes, in-flight requests finish, the queued snapshots
// commit, and only then does the process exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"pathprof/internal/faultinject"
	"pathprof/internal/serve"
	"pathprof/internal/telemetry"
	"pathprof/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":9523", "listen address")
	storeSpec := flag.String("store", "pppd-store", "durable store: a directory path, or \"mem\" for in-memory")
	queue := flag.Int("queue", 256, "ingest queue depth (full queue answers 429 + Retry-After)")
	batch := flag.Int("batch", 64, "max snapshots folded per durable commit")
	maxBytes := flag.Int64("max-snapshot-bytes", 8<<20, "ingest body size limit (larger requests are quarantined with 413)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request commit-wait timeout")
	shed := flag.Float64("shed", 0.75, "queue fill ratio above which read/plan traffic sheds with 503")
	drain := flag.Duration("drain", 5*time.Second, "shutdown drain window for in-flight requests and the queue")
	faults := flag.String("faults", "", "deterministic chaos spec: seed=N,kind=conndrop+netstall+partialwrite+storefail[,rate=r]")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	flag.Parse()

	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(os.Stderr, "pppd: "+format+"\n", a...)
		return 1
	}

	var inj *faultinject.Injector
	if *faults != "" {
		var err error
		if inj, err = faultinject.Parse(*faults); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "pppd: chaos active: %s\n", inj)
	}

	var store serve.Store
	if *storeSpec == "mem" {
		store = serve.NewMemStore()
	} else {
		fs, err := serve.OpenFileStore(*storeSpec)
		if err != nil {
			return fail("%v", err)
		}
		store = fs
		if tenants, err := fs.Tenants(); err == nil && len(tenants) > 0 {
			fmt.Fprintf(os.Stderr, "pppd: recovered %d tenant(s) from %s\n", len(tenants), fs.Dir())
		}
	}

	reg := telemetry.NewRegistry(1)
	cfg := serve.Config{
		Store:            store,
		QueueDepth:       *queue,
		BatchMax:         *batch,
		MaxSnapshotBytes: *maxBytes,
		RequestTimeout:   *timeout,
		ShedThreshold:    *shed,
		Registry:         reg,
		Inject:           inj,
		Program: func(tenant string) (string, bool) {
			w, ok := workloads.ByName(tenant)
			if !ok {
				return "", false
			}
			return w.Source, true
		},
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	server, err := serve.New(cfg)
	if err != nil {
		return fail("%v", err)
	}
	server.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "pppd: serving on http://%s/ (store %s, queue %d, batch %d)\n",
		ln.Addr(), *storeSpec, *queue, *batch)

	g := &serve.Graceful{
		Handler: server.Handler(),
		Drain:   *drain,
		Log:     os.Stderr,
		OnDrain: []func(ctx context.Context) error{server.Shutdown},
	}
	serveErr := g.Start(ln)
	ctx, stop := serve.SignalContext()
	defer stop()
	if err := g.Wait(ctx, serveErr); err != nil {
		return fail("%v", err)
	}
	return 0
}
